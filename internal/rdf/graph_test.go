package rdf

import (
	"testing"
)

func g3() *Graph {
	return GraphOf(
		T(exA, Type, exB),
		T(exA, exP, exB),
		T(exB, SubClassOf, exA),
	)
}

func TestGraphAddRemoveHas(t *testing.T) {
	g := NewGraph()
	tr := T(exA, exP, exB)
	if !g.Add(tr) {
		t.Error("first Add should report new")
	}
	if g.Add(tr) {
		t.Error("second Add should report duplicate")
	}
	if !g.Has(tr) || g.Len() != 1 {
		t.Error("Has/Len inconsistent after Add")
	}
	if !g.Remove(tr) {
		t.Error("Remove of present triple should report true")
	}
	if g.Remove(tr) {
		t.Error("Remove of absent triple should report false")
	}
	if g.Has(tr) || g.Len() != 0 {
		t.Error("Has/Len inconsistent after Remove")
	}
}

func TestGraphTriplesSorted(t *testing.T) {
	g := g3()
	ts := g.Triples()
	if len(ts) != 3 {
		t.Fatalf("len = %d, want 3", len(ts))
	}
	for i := 1; i < len(ts); i++ {
		if ts[i-1].Compare(ts[i]) >= 0 {
			t.Errorf("Triples() not strictly sorted at %d: %v then %v", i, ts[i-1], ts[i])
		}
	}
}

func TestGraphCloneIsIndependent(t *testing.T) {
	g := g3()
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone should equal original")
	}
	c.Add(T(exB, exP, exA))
	if g.Equal(c) {
		t.Error("mutating clone must not affect original")
	}
	if g.Len() != 3 || c.Len() != 4 {
		t.Errorf("lengths: g=%d c=%d, want 3 and 4", g.Len(), c.Len())
	}
}

func TestGraphEqual(t *testing.T) {
	a := g3()
	b := g3()
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("equal graphs not reported equal")
	}
	b.Remove(T(exA, exP, exB))
	b.Add(T(exB, exP, exA))
	if a.Equal(b) {
		t.Error("different graphs reported equal")
	}
	if a.Equal(NewGraph()) {
		t.Error("non-empty graph equal to empty graph")
	}
}

func TestGraphSchemaInstanceSplit(t *testing.T) {
	g := g3()
	schema := g.SchemaTriples()
	inst := g.InstanceTriples()
	if len(schema) != 1 || schema[0] != T(exB, SubClassOf, exA) {
		t.Errorf("schema split wrong: %v", schema)
	}
	if len(inst) != 2 {
		t.Errorf("instance split wrong: %v", inst)
	}
	if len(schema)+len(inst) != g.Len() {
		t.Error("split does not partition the graph")
	}
}

func TestGraphAddAllAndForEach(t *testing.T) {
	g := NewGraph()
	n := g.AddAll(g3())
	if n != 3 || g.Len() != 3 {
		t.Errorf("AddAll added %d (len %d), want 3", n, g.Len())
	}
	if n := g.AddAll(g3()); n != 0 {
		t.Errorf("AddAll of same graph added %d, want 0", n)
	}
	count := 0
	g.ForEach(func(Triple) bool { count++; return true })
	if count != 3 {
		t.Errorf("ForEach visited %d, want 3", count)
	}
	count = 0
	g.ForEach(func(Triple) bool { count++; return false })
	if count != 1 {
		t.Errorf("ForEach with early stop visited %d, want 1", count)
	}
}
