package rdf

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermConstructorsAndPredicates(t *testing.T) {
	cases := []struct {
		term    Term
		kind    TermKind
		str     string
		isIRI   bool
		isLit   bool
		isBlank bool
		isVar   bool
	}{
		{NewIRI("http://ex.org/a"), IRI, "<http://ex.org/a>", true, false, false, false},
		{NewLiteral("hi"), Literal, `"hi"`, false, true, false, false},
		{NewTypedLiteral("3", XSDInteger), Literal, `"3"^^<` + XSDInteger + `>`, false, true, false, false},
		{NewLangLiteral("chat", "FR"), Literal, `"chat"@fr`, false, true, false, false},
		{NewBlank("b0"), Blank, "_:b0", false, false, true, false},
		{NewVar("x"), Variable, "?x", false, false, false, true},
	}
	for _, c := range cases {
		if c.term.Kind != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.term, c.term.Kind, c.kind)
		}
		if got := c.term.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
		if c.term.IsIRI() != c.isIRI || c.term.IsLiteral() != c.isLit ||
			c.term.IsBlank() != c.isBlank || c.term.IsVar() != c.isVar {
			t.Errorf("%v: predicate mismatch", c.term)
		}
		if c.term.IsZero() {
			t.Errorf("%v: IsZero() = true for non-zero term", c.term)
		}
	}
	if !(Term{}).IsZero() {
		t.Error("zero Term should report IsZero")
	}
}

func TestLangTagNormalisation(t *testing.T) {
	if NewLangLiteral("a", "EN") != NewLangLiteral("a", "en") {
		t.Error("language tags should be case-normalised so == works")
	}
}

func TestLiteralEscaping(t *testing.T) {
	cases := map[string]string{
		"plain":       `"plain"`,
		"say \"hi\"":  `"say \"hi\""`,
		"back\\slash": `"back\\slash"`,
		"line\nbreak": `"line\nbreak"`,
		"tab\there":   `"tab\there"`,
		"cr\rhere":    `"cr\rhere"`,
	}
	for in, want := range cases {
		if got := NewLiteral(in).String(); got != want {
			t.Errorf("NewLiteral(%q).String() = %s, want %s", in, got, want)
		}
	}
}

func TestTermEqualityAsMapKey(t *testing.T) {
	m := map[Term]int{}
	m[NewIRI("http://ex.org/a")] = 1
	m[NewLiteral("a")] = 2
	m[NewTypedLiteral("a", XSDString)] = 3
	m[NewBlank("a")] = 4
	if len(m) != 4 {
		t.Fatalf("distinct terms collided: map has %d entries, want 4", len(m))
	}
	if m[NewIRI("http://ex.org/a")] != 1 {
		t.Error("IRI lookup failed")
	}
	// Plain vs typed literal with same lexical form must be distinct terms.
	if m[NewLiteral("a")] == m[NewTypedLiteral("a", XSDString)] {
		t.Error("plain and xsd:string literals should be distinct terms")
	}
}

func TestCompareOrdersKindsThenValues(t *testing.T) {
	terms := []Term{
		NewVar("v"),
		NewBlank("b"),
		NewLiteral("z"),
		NewLiteral("a"),
		NewIRI("http://ex.org/z"),
		NewIRI("http://ex.org/a"),
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].Compare(terms[j]) < 0 })
	wantOrder := []TermKind{IRI, IRI, Literal, Literal, Blank, Variable}
	for i, term := range terms {
		if term.Kind != wantOrder[i] {
			t.Fatalf("position %d: kind %v, want %v (order: %v)", i, term.Kind, wantOrder[i], terms)
		}
	}
	if terms[0].Value != "http://ex.org/a" {
		t.Errorf("IRIs not sorted by value: %v", terms[0])
	}
}

func TestCompareProperties(t *testing.T) {
	// Compare must be a strict weak order consistent with equality.
	f := func(av, bv string, ak, bk uint8) bool {
		a := Term{Kind: TermKind(ak % 4), Value: av}
		b := Term{Kind: TermKind(bk % 4), Value: bv}
		cab, cba := a.Compare(b), b.Compare(a)
		if a == b {
			return cab == 0 && cba == 0
		}
		return cab == -cba && cab != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTermKindString(t *testing.T) {
	for k, want := range map[TermKind]string{IRI: "IRI", Literal: "Literal", Blank: "Blank", Variable: "Variable"} {
		if k.String() != want {
			t.Errorf("TermKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(TermKind(42).String(), "42") {
		t.Error("unknown kind should include numeric value")
	}
}
