// Package rdf implements the RDF data model used throughout the repository:
// terms (IRIs, literals, blank nodes and — for query patterns — variables),
// triples, and in-memory graphs, together with the rdf:/rdfs: vocabulary the
// paper's Figure 1 is built on.
//
// The model follows the "database fragment" of RDF studied by the paper: an
// RDF graph is a set of well-formed triples s p o where s is an IRI or blank
// node, p is an IRI, and o is an IRI, blank node or literal. Variables never
// appear in graphs; they exist so that triple patterns (SPARQL BGPs) can
// reuse the same term representation.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the four kinds of RDF terms handled by this package.
type TermKind uint8

// The four term kinds. Variables are only legal in triple patterns.
const (
	// IRI is an absolute IRI reference (we do not resolve relative IRIs here;
	// parsers do that before constructing terms).
	IRI TermKind = iota
	// Literal is a (possibly typed or language-tagged) RDF literal.
	Literal
	// Blank is a blank node, identified by its local label.
	Blank
	// Variable is a query variable; never part of a graph.
	Variable
)

func (k TermKind) String() string {
	switch k {
	case IRI:
		return "IRI"
	case Literal:
		return "Literal"
	case Blank:
		return "Blank"
	case Variable:
		return "Variable"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is an RDF term. Terms are small comparable values: they can be used
// directly as map keys, and == implements RDF term equality (IRIs equal by
// string, literals equal by lexical form + datatype + language tag, blank
// nodes equal by label within one graph).
type Term struct {
	// Kind discriminates the union.
	Kind TermKind
	// Value holds the IRI string, the literal's lexical form, the blank node
	// label (without the "_:" prefix), or the variable name (without "?").
	Value string
	// Datatype is the datatype IRI for typed literals ("" otherwise).
	Datatype string
	// Lang is the language tag for language-tagged literals ("" otherwise).
	Lang string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain literal term.
func NewLiteral(lexical string) Term { return Term{Kind: Literal, Value: lexical} }

// NewTypedLiteral returns a literal with a datatype IRI.
func NewTypedLiteral(lexical, datatype string) Term {
	return Term{Kind: Literal, Value: lexical, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal. Language tags are
// case-insensitive in RDF; we normalise to lower case so == works.
func NewLangLiteral(lexical, lang string) Term {
	return Term{Kind: Literal, Value: lexical, Lang: strings.ToLower(lang)}
}

// NewBlank returns a blank node with the given label (no "_:" prefix).
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// NewVar returns a query variable with the given name (no "?" prefix).
func NewVar(name string) Term { return Term{Kind: Variable, Value: name} }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// IsVar reports whether the term is a query variable.
func (t Term) IsVar() bool { return t.Kind == Variable }

// IsZero reports whether the term is the zero Term, used as "absent".
func (t Term) IsZero() bool { return t == Term{} }

// String renders the term in N-Triples-like concrete syntax: <iri>,
// "literal"^^<dt>, "literal"@lang, _:label, or ?var.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + escapeIRI(t.Value) + ">"
	case Literal:
		q := quoteLiteral(t.Value)
		switch {
		case t.Lang != "":
			return q + "@" + t.Lang
		case t.Datatype != "":
			return q + "^^<" + escapeIRI(t.Datatype) + ">"
		default:
			return q
		}
	case Blank:
		return "_:" + t.Value
	case Variable:
		return "?" + t.Value
	default:
		return fmt.Sprintf("<invalid term kind %d>", t.Kind)
	}
}

// quoteLiteral escapes a literal lexical form per N-Triples rules.
func quoteLiteral(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// iriNeedsEscape reports whether the byte may not appear unescaped inside
// an N-Triples IRIREF: angle brackets, quote, braces, pipe, caret,
// backtick, backslash, space and control characters — all ASCII, which is
// what lets escapeIRI work byte-wise.
func iriNeedsEscape(c byte) bool {
	switch c {
	case '<', '>', '"', '{', '}', '|', '^', '`', '\\':
		return true
	}
	return c <= 0x20
}

// escapeIRI \u-escapes the characters of an IRI value that the <...> syntax
// cannot hold raw, so serialised IRIs always re-parse to the same value
// (the parsers decode \uXXXX/\UXXXXXXXX inside IRIs). It operates on bytes
// — every escape-needing character is ASCII — so multi-byte sequences and
// even invalid UTF-8 pass through untouched and the round-trip is exact at
// the byte level. Ordinary IRIs pass through without allocating.
func escapeIRI(s string) string {
	clean := true
	for i := 0; i < len(s); i++ {
		if iriNeedsEscape(s[i]) {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		if c := s[i]; iriNeedsEscape(c) {
			fmt.Fprintf(&b, `\u%04X`, c)
		} else {
			b.WriteByte(c)
		}
	}
	return b.String()
}

// Compare orders terms: by kind first (IRI < Literal < Blank < Variable),
// then by value, datatype and language. It gives graphs a deterministic
// serialisation order.
func (t Term) Compare(u Term) int {
	if t.Kind != u.Kind {
		if t.Kind < u.Kind {
			return -1
		}
		return 1
	}
	if c := strings.Compare(t.Value, u.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Datatype, u.Datatype); c != 0 {
		return c
	}
	return strings.Compare(t.Lang, u.Lang)
}
