package rdf

// Namespace IRIs for the vocabularies the DB fragment of RDF relies on.
const (
	// RDFNS is the rdf: namespace.
	RDFNS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	// RDFSNS is the rdfs: namespace.
	RDFSNS = "http://www.w3.org/2000/01/rdf-schema#"
	// XSDNS is the xsd: namespace (literal datatypes).
	XSDNS = "http://www.w3.org/2001/XMLSchema#"
)

// The built-in properties of Figure 1: rdf:type for class assertions, and the
// four RDFS constraint properties for schema statements.
var (
	// Type is rdf:type — "s rdf:type o" states that resource s belongs to
	// class o (relational notation o(s)).
	Type = NewIRI(RDFNS + "type")
	// SubClassOf is rdfs:subClassOf — "s rdfs:subClassOf o" states s ⊆ o.
	SubClassOf = NewIRI(RDFSNS + "subClassOf")
	// SubPropertyOf is rdfs:subPropertyOf — "s rdfs:subPropertyOf o" states s ⊆ o.
	SubPropertyOf = NewIRI(RDFSNS + "subPropertyOf")
	// Domain is rdfs:domain — "s rdfs:domain o" states Π_domain(s) ⊆ o.
	Domain = NewIRI(RDFSNS + "domain")
	// Range is rdfs:range — "s rdfs:range o" states Π_range(s) ⊆ o.
	Range = NewIRI(RDFSNS + "range")

	// Class is rdfs:Class, the class of classes.
	Class = NewIRI(RDFSNS + "Class")
	// RDFProperty is rdf:Property, the class of properties.
	RDFProperty = NewIRI(RDFNS + "Property")
	// RDFSResource is rdfs:Resource, the top class.
	RDFSResource = NewIRI(RDFSNS + "Resource")
	// Label is rdfs:label (annotation; carried through but not reasoned on).
	Label = NewIRI(RDFSNS + "label")
	// Comment is rdfs:comment (annotation).
	Comment = NewIRI(RDFSNS + "comment")

	// XSDString, XSDInteger, XSDDecimal, XSDBoolean are common literal
	// datatypes emitted by the parsers.
	XSDString  = XSDNS + "string"
	XSDInteger = XSDNS + "integer"
	XSDDecimal = XSDNS + "decimal"
	XSDBoolean = XSDNS + "boolean"
)

// IsSchemaProperty reports whether p is one of the four RDFS constraint
// properties of Figure 1 (bottom): rdfs:subClassOf, rdfs:subPropertyOf,
// rdfs:domain, rdfs:range. Triples with such predicates are schema triples
// in the DB fragment.
func IsSchemaProperty(p Term) bool {
	return p == SubClassOf || p == SubPropertyOf || p == Domain || p == Range
}

// Figure1Row is one row of the paper's Figure 1: how an assertion or
// constraint is written as a triple and what it means.
type Figure1Row struct {
	// Kind is "assertion" or "constraint".
	Kind string
	// Name is the paper's row label, e.g. "Class" or "Domain typing".
	Name string
	// TriplePattern is the triple shape, e.g. "s rdf:type o".
	TriplePattern string
	// Semantics is the relational/OWA interpretation column.
	Semantics string
	// Property is the built-in property the row is about (zero Term for the
	// generic property assertion row).
	Property Term
}

// Figure1 returns the content of the paper's Figure 1 as data, so the bench
// harness (experiment E1) can print it and tests can check the vocabulary
// stays in sync with the paper.
func Figure1() []Figure1Row {
	return []Figure1Row{
		{Kind: "assertion", Name: "Class", TriplePattern: "s rdf:type o", Semantics: "o(s)", Property: Type},
		{Kind: "assertion", Name: "Property", TriplePattern: "s p o", Semantics: "p(s, o)"},
		{Kind: "constraint", Name: "Subclass", TriplePattern: "s rdfs:subClassOf o", Semantics: "s ⊆ o", Property: SubClassOf},
		{Kind: "constraint", Name: "Subproperty", TriplePattern: "s rdfs:subPropertyOf o", Semantics: "s ⊆ o", Property: SubPropertyOf},
		{Kind: "constraint", Name: "Domain typing", TriplePattern: "s rdfs:domain o", Semantics: "Π_domain(s) ⊆ o", Property: Domain},
		{Kind: "constraint", Name: "Range typing", TriplePattern: "s rdfs:range o", Semantics: "Π_range(s) ⊆ o", Property: Range},
	}
}
