package rdf

import (
	"errors"
	"testing"
)

var (
	exA = NewIRI("http://ex.org/a")
	exB = NewIRI("http://ex.org/b")
	exP = NewIRI("http://ex.org/p")
)

func TestTripleWellFormed(t *testing.T) {
	good := []Triple{
		T(exA, exP, exB),
		T(exA, exP, NewLiteral("v")),
		T(NewBlank("b"), exP, NewBlank("c")),
		T(exA, Type, exB),
	}
	for _, tr := range good {
		if err := tr.WellFormed(); err != nil {
			t.Errorf("%v: unexpected error %v", tr, err)
		}
	}
	bad := []Triple{
		T(NewLiteral("x"), exP, exB), // literal subject
		T(exA, NewLiteral("p"), exB), // literal predicate
		T(exA, NewBlank("p"), exB),   // blank predicate
		T(exA, exP, NewVar("o")),     // variable object
		T(NewVar("s"), exP, exB),     // variable subject
		T(exA, NewVar("p"), exB),     // variable predicate
	}
	for _, tr := range bad {
		err := tr.WellFormed()
		if err == nil {
			t.Errorf("%v: want well-formedness error, got nil", tr)
			continue
		}
		if !errors.Is(err, ErrIllFormed) {
			t.Errorf("%v: error %v should wrap ErrIllFormed", tr, err)
		}
	}
}

func TestTripleIsSchema(t *testing.T) {
	schema := []Triple{
		T(exA, SubClassOf, exB),
		T(exA, SubPropertyOf, exB),
		T(exA, Domain, exB),
		T(exA, Range, exB),
	}
	for _, tr := range schema {
		if !tr.IsSchema() {
			t.Errorf("%v: should be schema", tr)
		}
	}
	instance := []Triple{
		T(exA, Type, exB),
		T(exA, exP, exB),
	}
	for _, tr := range instance {
		if tr.IsSchema() {
			t.Errorf("%v: should not be schema", tr)
		}
	}
}

func TestTripleHasVariable(t *testing.T) {
	if T(exA, exP, exB).HasVariable() {
		t.Error("ground triple reported a variable")
	}
	for _, tr := range []Triple{
		T(NewVar("s"), exP, exB),
		T(exA, NewVar("p"), exB),
		T(exA, exP, NewVar("o")),
	} {
		if !tr.HasVariable() {
			t.Errorf("%v: variable not detected", tr)
		}
	}
}

func TestTripleStringAndCompare(t *testing.T) {
	tr := T(exA, exP, NewLiteral("v"))
	want := `<http://ex.org/a> <http://ex.org/p> "v"`
	if tr.String() != want {
		t.Errorf("String() = %q, want %q", tr.String(), want)
	}
	a := T(exA, exP, exA)
	b := T(exA, exP, exB)
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 || a.Compare(a) != 0 {
		t.Error("Compare is not a consistent order on triples")
	}
}

func TestFigure1MappingMatchesVocabulary(t *testing.T) {
	rows := Figure1()
	if len(rows) != 6 {
		t.Fatalf("Figure 1 has 6 rows, got %d", len(rows))
	}
	byName := map[string]Figure1Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName["Class"].Property != Type {
		t.Error("Class assertion row must use rdf:type")
	}
	for name, want := range map[string]Term{
		"Subclass":      SubClassOf,
		"Subproperty":   SubPropertyOf,
		"Domain typing": Domain,
		"Range typing":  Range,
	} {
		row := byName[name]
		if row.Property != want {
			t.Errorf("row %q: property %v, want %v", name, row.Property, want)
		}
		if row.Kind != "constraint" {
			t.Errorf("row %q: kind %q, want constraint", name, row.Kind)
		}
		if !IsSchemaProperty(row.Property) {
			t.Errorf("row %q: property not recognised as schema property", name)
		}
	}
	if IsSchemaProperty(Type) {
		t.Error("rdf:type is not a schema (constraint) property in the DB fragment")
	}
}
