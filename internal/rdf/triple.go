package rdf

import (
	"errors"
	"fmt"
)

// Triple is an RDF triple (or, when it contains variables, a triple pattern).
// Triples are comparable values and can be used as map keys.
type Triple struct {
	S, P, O Term
}

// T is a shorthand constructor for a triple.
func T(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples-like syntax (no trailing dot).
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s", t.S, t.P, t.O)
}

// ErrIllFormed is wrapped by all well-formedness violations reported by
// (Triple).WellFormed.
var ErrIllFormed = errors.New("ill-formed triple")

// WellFormed checks that the triple is a well-formed RDF triple per the DB
// fragment: subject is an IRI or blank node, predicate is an IRI, and object
// is an IRI, blank node or literal. Variables are rejected (they belong to
// patterns, not graphs).
func (t Triple) WellFormed() error {
	switch t.S.Kind {
	case IRI, Blank:
	default:
		return fmt.Errorf("%w: subject must be IRI or blank node, got %s", ErrIllFormed, t.S)
	}
	if t.P.Kind != IRI {
		return fmt.Errorf("%w: predicate must be IRI, got %s", ErrIllFormed, t.P)
	}
	switch t.O.Kind {
	case IRI, Blank, Literal:
	default:
		return fmt.Errorf("%w: object must be IRI, blank node or literal, got %s", ErrIllFormed, t.O)
	}
	return nil
}

// IsSchema reports whether the triple is a schema (constraint) triple, i.e.
// its predicate is one of the four RDFS constraint properties.
func (t Triple) IsSchema() bool { return IsSchemaProperty(t.P) }

// HasVariable reports whether any position holds a query variable, i.e. the
// value is a triple pattern rather than a concrete triple.
func (t Triple) HasVariable() bool {
	return t.S.IsVar() || t.P.IsVar() || t.O.IsVar()
}

// Compare orders triples lexicographically by subject, predicate, object.
func (t Triple) Compare(u Triple) int {
	if c := t.S.Compare(u.S); c != 0 {
		return c
	}
	if c := t.P.Compare(u.P); c != 0 {
		return c
	}
	return t.O.Compare(u.O)
}
