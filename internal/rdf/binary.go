package rdf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"unsafe"
)

// Binary term codec. Terms are the unit of serialisation shared by the
// persistence layer's two artifacts: the dictionary section of a snapshot
// stores every coined term once in ID order, and WAL mutation records store
// triples term-level so they replay through the normal Insert/Delete path
// regardless of how the dictionary has evolved since.
//
// Encoding: one tag byte (term kind in the low bits, presence flags for the
// literal's datatype and language tag above), then each present string as a
// uvarint length followed by raw bytes. The encoding is self-delimiting and
// strictly validated on decode — an unknown kind, a stray flag, or a length
// running past the buffer is an error, never a panic — because WAL and
// snapshot payloads must be safely decodable from a half-trusted disk.

// Tag byte layout for the binary term codec.
const (
	termKindMask  = 0x03 // low two bits: TermKind
	termFlagDtype = 0x04 // literal carries a datatype IRI
	termFlagLang  = 0x08 // literal carries a language tag
	termFlagsAll  = termKindMask | termFlagDtype | termFlagLang
)

// ErrTermCorrupt is wrapped by every term-decoding error.
var ErrTermCorrupt = errors.New("rdf: corrupt binary term")

// AppendTerm appends the binary encoding of t to b and returns the extended
// slice (append-style, so batch encoders reuse one buffer).
func AppendTerm(b []byte, t Term) []byte {
	tag := byte(t.Kind) & termKindMask
	if t.Datatype != "" {
		tag |= termFlagDtype
	}
	if t.Lang != "" {
		tag |= termFlagLang
	}
	b = append(b, tag)
	b = appendString(b, t.Value)
	if tag&termFlagDtype != 0 {
		b = appendString(b, t.Datatype)
	}
	if tag&termFlagLang != 0 {
		b = appendString(b, t.Lang)
	}
	return b
}

// DecodeTerm decodes one term from the front of b, returning the term and
// the number of bytes consumed. Errors wrap ErrTermCorrupt.
func DecodeTerm(b []byte) (Term, int, error) {
	return decodeTerm(b, false)
}

// DecodeTermInPlace is DecodeTerm with zero-copy strings: the returned
// term's Value/Datatype/Lang alias b, so the caller must guarantee b is
// never modified and outlives every use of the term. The snapshot loader
// uses it to decode a whole dictionary without one string copy (the
// snapshot image stays alive regardless, pinned by the stores' aliased
// index leaves); transient buffers like WAL reads must use DecodeTerm.
func DecodeTermInPlace(b []byte) (Term, int, error) {
	return decodeTerm(b, true)
}

func decodeTerm(b []byte, inPlace bool) (Term, int, error) {
	if len(b) == 0 {
		return Term{}, 0, fmt.Errorf("%w: empty buffer", ErrTermCorrupt)
	}
	tag := b[0]
	if tag&^byte(termFlagsAll) != 0 {
		return Term{}, 0, fmt.Errorf("%w: unknown tag bits 0x%02x", ErrTermCorrupt, tag)
	}
	kind := TermKind(tag & termKindMask)
	if kind != Literal && tag&(termFlagDtype|termFlagLang) != 0 {
		return Term{}, 0, fmt.Errorf("%w: literal flags on %s term", ErrTermCorrupt, kind)
	}
	if tag&termFlagDtype != 0 && tag&termFlagLang != 0 {
		return Term{}, 0, fmt.Errorf("%w: literal with both datatype and language", ErrTermCorrupt)
	}
	n := 1
	t := Term{Kind: kind}
	var err error
	if t.Value, n, err = decodeString(b, n, inPlace); err != nil {
		return Term{}, 0, err
	}
	if tag&termFlagDtype != 0 {
		if t.Datatype, n, err = decodeString(b, n, inPlace); err != nil {
			return Term{}, 0, err
		}
	}
	if tag&termFlagLang != 0 {
		if t.Lang, n, err = decodeString(b, n, inPlace); err != nil {
			return Term{}, 0, err
		}
	}
	return t, n, nil
}

// AppendTriple appends the three terms of t.
func AppendTriple(b []byte, t Triple) []byte {
	b = AppendTerm(b, t.S)
	b = AppendTerm(b, t.P)
	return AppendTerm(b, t.O)
}

// DecodeTriple decodes one triple from the front of b, returning it and the
// number of bytes consumed.
func DecodeTriple(b []byte) (Triple, int, error) {
	var t Triple
	n := 0
	for _, dst := range []*Term{&t.S, &t.P, &t.O} {
		term, k, err := DecodeTerm(b[n:])
		if err != nil {
			return Triple{}, 0, err
		}
		*dst = term
		n += k
	}
	return t, n, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// decodeString reads a uvarint-prefixed string starting at offset off and
// returns the string and the offset past it. With inPlace the string aliases
// b instead of copying (see DecodeTermInPlace for the obligations).
func decodeString(b []byte, off int, inPlace bool) (string, int, error) {
	l, k := binary.Uvarint(b[off:])
	if k <= 0 {
		return "", 0, fmt.Errorf("%w: bad string length", ErrTermCorrupt)
	}
	off += k
	if l > uint64(len(b)-off) {
		return "", 0, fmt.Errorf("%w: string length %d exceeds buffer", ErrTermCorrupt, l)
	}
	end := off + int(l)
	if l == 0 {
		return "", end, nil
	}
	if inPlace {
		return unsafe.String(&b[off], int(l)), end, nil
	}
	return string(b[off:end]), end, nil
}
