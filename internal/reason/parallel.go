package reason

import (
	"runtime"
	"sync"

	"repro/internal/store"
)

// MaterializeParallel computes the same closure as Materialize using
// round-synchronous parallelism, a single-machine take on the paper's open
// issue of "efficiently maintaining RDF graph saturation, especially in a
// distributed setting" (§II-D; Motik et al. [29] study the shared-memory
// version at scale).
//
// Within one round the store is frozen: workers partition the delta and
// compute rule instantiations against the read-only store, then a single
// merge step adds the conclusions and forms the next delta. Conclusions
// produced in a round only become visible in the next round, so the
// iteration may need more rounds than the sequential semi-naive engine, but
// it reaches the same fixpoint (naive-iteration argument: every rule
// application eventually fires).
//
// workers ≤ 0 selects GOMAXPROCS. The returned Materialization supports the
// same incremental maintenance as the sequential one.
func MaterializeParallel(g *store.Store, rules []Rule, workers int) *Materialization {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := &Materialization{
		st:    store.NewWithCapacity(g.Len()),
		base:  make(map[store.Triple]struct{}, g.Len()),
		rules: rules,
	}
	delta := make([]store.Triple, 0, g.Len())
	g.ForEachMatch(store.Triple{}, func(t store.Triple) bool {
		m.base[t] = struct{}{}
		m.st.Add(t)
		delta = append(delta, t)
		return true
	})

	for len(delta) > 0 {
		m.Stats.Rounds++
		conclusions := parallelRound(m.st, rules, delta, workers)
		delta = delta[:0]
		for _, c := range conclusions {
			if m.st.Add(c) {
				m.Stats.Derived++
				delta = append(delta, c)
			}
		}
	}
	return m
}

// parallelRound joins every delta triple against the frozen store under
// every rule, fanning the delta out over workers. The per-worker outputs
// are deduplicated locally (cheaply, with a set) before the sequential
// merge.
func parallelRound(st *store.Store, rules []Rule, delta []store.Triple, workers int) []store.Triple {
	if len(delta) < 2*workers {
		workers = 1
	}
	chunk := (len(delta) + workers - 1) / workers
	outs := make([][]store.Triple, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(delta))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var sc scratch // per-worker binding buffers, no sharing across goroutines
			local := map[store.Triple]struct{}{}
			for _, t := range delta[lo:hi] {
				for ri := range rules {
					r := &rules[ri]
					for pos := 0; pos < 2; pos++ {
						forEachInstantiation(st, r, pos, t, &sc, func(c, _ store.Triple) {
							if !st.Contains(c) {
								local[c] = struct{}{}
							}
						})
					}
				}
			}
			out := make([]store.Triple, 0, len(local))
			for c := range local {
				out = append(out, c)
			}
			outs[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	var merged []store.Triple
	for _, out := range outs {
		merged = append(merged, out...)
	}
	return merged
}
