package reason

import (
	"runtime"
	"sync"

	"repro/internal/store"
)

// MaterializeParallel computes the same closure as Materialize using
// round-synchronous parallelism, a single-machine take on the paper's open
// issue of "efficiently maintaining RDF graph saturation, especially in a
// distributed setting" (§II-D; Motik et al. [29] study the shared-memory
// version at scale, and Ajileye et al. identify the closure-merge step as
// the scalability bottleneck — addressed here with a hash-sharded merge).
//
// Within one round the store is frozen: workers partition the delta and
// compute rule instantiations against the read-only store, hash-routing
// their conclusions into per-shard buckets. The merge then runs in two
// concurrent stages instead of the former sequential Add loop: (1) one
// goroutine per shard deduplicates the conclusions of its shard across all
// workers (a triple always hashes to the same shard, so shard-local dedup is
// global dedup), and (2) the surviving triples are inserted with one writer
// per index order (store.AddBatchParallel). Conclusions produced in a round
// only become visible in the next round, so the iteration may need more
// rounds than the sequential semi-naive engine, but it reaches the same
// fixpoint (naive-iteration argument: every rule application eventually
// fires).
//
// workers ≤ 0 selects GOMAXPROCS; workers == 1 degenerates to the
// sequential semi-naive engine (the round machinery would only add
// overhead). The returned Materialization supports the same incremental
// maintenance as the sequential one.
func MaterializeParallel(g *store.Store, rules []Rule, workers int) *Materialization {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return Materialize(g, rules)
	}
	m := &Materialization{
		st:    store.NewWithCapacity(g.Len()),
		base:  store.NewTripleSet(g.Len()),
		rules: rules,
	}
	delta := make([]store.Triple, 0, g.Len())
	g.ForEachMatch(store.Triple{}, func(t store.Triple) bool {
		m.base.Add(t)
		m.st.Add(t)
		delta = append(delta, t)
		return true
	})

	prevOut := len(delta)
	for len(delta) > 0 {
		m.Stats.Rounds++
		shards := parallelRound(m.st, rules, delta, workers, prevOut)
		m.Stats.Derived += m.st.AddBatchParallel(shards...)
		delta = delta[:0]
		for _, sh := range shards {
			delta = append(delta, sh...)
		}
		prevOut = len(delta)
	}
	return m
}

// tripleShard hashes a triple to a merge shard. The multipliers are odd
// 64-bit constants (Fibonacci hashing style); any deterministic mix works,
// it only has to spread LUBM-ish ID distributions evenly across shards.
func tripleShard(t store.Triple, shards int) int {
	h := uint64(t.S)*0x9E3779B185EBCA87 ^ uint64(t.P)*0xC2B2AE3D27D4EB4F ^ uint64(t.O)*0x165667B19E3779F9
	h ^= h >> 32
	return int(h % uint64(shards))
}

// parallelRound joins every delta triple against the frozen store under
// every rule and returns the new conclusions grouped by shard, globally
// deduplicated and not yet in st. Derivation fans the delta out over
// workers; each worker deduplicates locally (its map pre-sized from the
// previous round's output, so steady rounds do not rehash) and routes its
// conclusions into per-shard buckets. A second fan-out then merges each
// shard's buckets across workers concurrently.
func parallelRound(st *store.Store, rules []Rule, delta []store.Triple, workers, prevOut int) [][]store.Triple {
	if len(delta) < 2*workers {
		workers = 1
	}
	shards := workers
	chunk := (len(delta) + workers - 1) / workers
	buckets := make([][][]store.Triple, workers) // worker → shard → conclusions
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(delta))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var sc scratch // per-worker binding buffers, no sharing across goroutines
			local := make(map[store.Triple]struct{}, prevOut/workers+1)
			for _, t := range delta[lo:hi] {
				for ri := range rules {
					r := &rules[ri]
					for pos := 0; pos < 2; pos++ {
						forEachInstantiation(st, r, pos, t, &sc, func(c, _ store.Triple) {
							if !st.Contains(c) {
								local[c] = struct{}{}
							}
						})
					}
				}
			}
			bs := make([][]store.Triple, shards)
			for c := range local {
				s := tripleShard(c, shards)
				bs[s] = append(bs[s], c)
			}
			buckets[w] = bs
		}(w, lo, hi)
	}
	wg.Wait()

	// Cross-worker dedup, one goroutine per shard. Triples equal across
	// workers landed in the same shard, so the shard-local sets compose to a
	// global dedup without any shared state.
	merged := make([][]store.Triple, shards)
	if shards == 1 {
		merged[0] = mergeShard(buckets, 0)
		return merged
	}
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			merged[s] = mergeShard(buckets, s)
		}(s)
	}
	wg.Wait()
	return merged
}

// mergeShard deduplicates shard s's conclusions across all workers.
func mergeShard(buckets [][][]store.Triple, s int) []store.Triple {
	total := 0
	for _, bs := range buckets {
		if bs != nil {
			total += len(bs[s])
		}
	}
	if total == 0 {
		return nil
	}
	seen := make(map[store.Triple]struct{}, total)
	out := make([]store.Triple, 0, total)
	for _, bs := range buckets {
		if bs == nil {
			continue
		}
		for _, c := range bs[s] {
			if _, dup := seen[c]; dup {
				continue
			}
			seen[c] = struct{}{}
			out = append(out, c)
		}
	}
	return out
}
