package reason

import (
	"testing"

	"repro/internal/store"
)

func TestParallelMatchesSequential(t *testing.T) {
	e := newEnv()
	g := e.storeOf(
		e.tr("GradStudent", "sco", "Student"),
		e.tr("Student", "sco", "Person"),
		e.tr("Professor", "sco", "Person"),
		e.tr("advises", "spo", "knows"),
		e.tr("knows", "dom", "Person"),
		e.tr("knows", "rng", "Person"),
		e.tr("advises", "rng", "GradStudent"),
		e.tr("a", "advises", "b"),
		e.tr("b", "type", "GradStudent"),
		e.tr("c", "knows", "a"),
		e.tr("d", "type", "Professor"),
	)
	rules := RDFSRules(e.voc)
	seq := Materialize(g, rules)
	for _, workers := range []int{1, 2, 4, 0} {
		par := MaterializeParallel(g, rules, workers)
		if !storesEqual(seq.Store(), par.Store()) {
			t.Errorf("workers=%d: parallel closure (%d) differs from sequential (%d)",
				workers, par.Store().Len(), seq.Store().Len())
		}
		if par.BaseLen() != seq.BaseLen() || par.DerivedLen() != seq.DerivedLen() {
			t.Errorf("workers=%d: accounting differs", workers)
		}
	}
}

func TestParallelSupportsMaintenance(t *testing.T) {
	// The parallel materialisation must be maintainable by the same
	// incremental machinery afterwards.
	e := newEnv()
	g := e.tomGraph()
	m := MaterializeParallel(g, RDFSRules(e.voc), 2)
	m.Insert(e.tr("felix", "type", "Cat"))
	if !m.Store().Contains(e.tr("felix", "type", "Mammal")) {
		t.Error("insert after parallel materialisation broken")
	}
	m.Delete(e.tr("tom", "type", "Cat"))
	if m.Store().Contains(e.tr("tom", "type", "Mammal")) {
		t.Error("DRed after parallel materialisation broken")
	}
}

func TestParallelDeepChain(t *testing.T) {
	// A deep dependency chain forces many rounds; round-synchronous
	// parallelism must still converge to the identical closure.
	e := newEnv()
	st := store.New()
	st.Add(e.tr("x", "type", "C0"))
	for i := 0; i < 30; i++ {
		st.Add(store.Triple{
			S: e.id("C" + itoa(i)),
			P: e.voc.SubClassOf,
			O: e.id("C" + itoa(i+1)),
		})
	}
	rules := RDFSRules(e.voc)
	seq := Materialize(st, rules)
	par := MaterializeParallel(st, rules, 4)
	if !storesEqual(seq.Store(), par.Store()) {
		t.Errorf("deep chain: parallel %d != sequential %d", par.Store().Len(), seq.Store().Len())
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
