package reason

import (
	"testing"

	"repro/internal/dict"
	"repro/internal/rdf"
	"repro/internal/schema"
	"repro/internal/store"
)

// env bundles a dictionary, vocabulary and helpers shared by the tests.
type env struct {
	d   *dict.Dict
	voc schema.Vocab
}

func newEnv() *env {
	d := dict.New()
	return &env{d: d, voc: schema.NewVocab(d)}
}

func (e *env) id(name string) dict.ID {
	return e.d.Encode(rdf.NewIRI("http://ex.org/" + name))
}

func (e *env) tr(s, p, o string) store.Triple {
	pid := e.id(p)
	switch p {
	case "type":
		pid = e.voc.Type
	case "sco":
		pid = e.voc.SubClassOf
	case "spo":
		pid = e.voc.SubPropertyOf
	case "dom":
		pid = e.voc.Domain
	case "rng":
		pid = e.voc.Range
	}
	return store.Triple{S: e.id(s), P: pid, O: e.id(o)}
}

func (e *env) storeOf(ts ...store.Triple) *store.Store {
	st := store.New()
	for _, t := range ts {
		st.Add(t)
	}
	return st
}

// tomGraph is the paper's Section I example: Tom is a cat, cats are mammals.
func (e *env) tomGraph() *store.Store {
	return e.storeOf(
		e.tr("tom", "type", "Cat"),
		e.tr("Cat", "sco", "Mammal"),
	)
}

func TestRulesValidate(t *testing.T) {
	e := newEnv()
	for _, r := range RDFSRules(e.voc) {
		if err := r.Validate(); err != nil {
			t.Errorf("rule %s invalid: %v", r.Name, err)
		}
	}
}

func TestValidateCatchesBadRules(t *testing.T) {
	bad := []Rule{
		{Name: "unsafe", Premises: [2]Pattern{{S: V(0), P: V(1), O: V(2)}, {S: V(0), P: V(1), O: V(2)}},
			Conclusion: Pattern{S: V(3), P: V(1), O: V(2)}, NVars: 4},
		{Name: "out-of-range", Premises: [2]Pattern{{S: V(5), P: V(1), O: V(2)}, {S: V(0), P: V(1), O: V(2)}},
			Conclusion: Pattern{S: V(0), P: V(1), O: V(2)}, NVars: 3},
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("rule %s should fail validation", r.Name)
		}
	}
}

func TestFigure2RuleSelection(t *testing.T) {
	e := newEnv()
	rules := Figure2Rules(e.voc)
	want := []string{"rdfs9", "rdfs7", "rdfs2", "rdfs3"}
	if len(rules) != len(want) {
		t.Fatalf("Figure 2 has %d rules, got %d", len(want), len(rules))
	}
	for i, r := range rules {
		if r.Name != want[i] {
			t.Errorf("rule %d = %s, want %s (paper order)", i, r.Name, want[i])
		}
		if r.Doc == "" {
			t.Errorf("rule %s has no doc string for Figure 2 rendering", r.Name)
		}
	}
}

func TestSaturateTomExample(t *testing.T) {
	// "Tom is a cat" + "any cat is a mammal" must entail "Tom is a mammal"
	// (rdfs9) — the motivating example of Section I.
	e := newEnv()
	m := Materialize(e.tomGraph(), RDFSRules(e.voc))
	if !m.Store().Contains(e.tr("tom", "type", "Mammal")) {
		t.Fatal("saturation missed: tom rdf:type Mammal")
	}
	if m.BaseLen() != 2 || m.DerivedLen() != 1 {
		t.Errorf("base=%d derived=%d, want 2 and 1", m.BaseLen(), m.DerivedLen())
	}
	if m.IsBase(e.tr("tom", "type", "Mammal")) {
		t.Error("derived triple flagged as base")
	}
	if !m.IsBase(e.tr("tom", "type", "Cat")) {
		t.Error("base triple not flagged as base")
	}
}

func TestSaturateEachRule(t *testing.T) {
	e := newEnv()
	rules := RDFSRules(e.voc)
	cases := []struct {
		name string
		in   []store.Triple
		want []store.Triple
	}{
		{"rdfs9", []store.Triple{e.tr("C1", "sco", "C2"), e.tr("x", "type", "C1")},
			[]store.Triple{e.tr("x", "type", "C2")}},
		{"rdfs7", []store.Triple{e.tr("p1", "spo", "p2"), e.tr("x", "p1", "y")},
			[]store.Triple{e.tr("x", "p2", "y")}},
		{"rdfs2", []store.Triple{e.tr("p", "dom", "C"), e.tr("x", "p", "y")},
			[]store.Triple{e.tr("x", "type", "C")}},
		{"rdfs3", []store.Triple{e.tr("p", "rng", "C"), e.tr("x", "p", "y")},
			[]store.Triple{e.tr("y", "type", "C")}},
		{"rdfs5", []store.Triple{e.tr("p1", "spo", "p2"), e.tr("p2", "spo", "p3")},
			[]store.Triple{e.tr("p1", "spo", "p3")}},
		{"rdfs11", []store.Triple{e.tr("C1", "sco", "C2"), e.tr("C2", "sco", "C3")},
			[]store.Triple{e.tr("C1", "sco", "C3")}},
		{"ext-dom-sp", []store.Triple{e.tr("p1", "spo", "p2"), e.tr("p2", "dom", "C")},
			[]store.Triple{e.tr("p1", "dom", "C")}},
		{"ext-rng-sp", []store.Triple{e.tr("p1", "spo", "p2"), e.tr("p2", "rng", "C")},
			[]store.Triple{e.tr("p1", "rng", "C")}},
		{"ext-dom-sc", []store.Triple{e.tr("p", "dom", "C1"), e.tr("C1", "sco", "C2")},
			[]store.Triple{e.tr("p", "dom", "C2")}},
		{"ext-rng-sc", []store.Triple{e.tr("p", "rng", "C1"), e.tr("C1", "sco", "C2")},
			[]store.Triple{e.tr("p", "rng", "C2")}},
	}
	for _, c := range cases {
		m := Materialize(e.storeOf(c.in...), rules)
		for _, w := range c.want {
			if !m.Store().Contains(w) {
				t.Errorf("%s: missing conclusion %v", c.name, w)
			}
		}
	}
}

func TestSaturateMultiStepChain(t *testing.T) {
	// Deep chain: x:type C0, C0 ⊑ C1 ⊑ ... ⊑ C9; all ten types derived, and
	// the schema closure contains all subclass pairs.
	e := newEnv()
	st := store.New()
	st.Add(e.tr("x", "type", "C0"))
	names := []string{"C0", "C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8", "C9"}
	for i := 0; i+1 < len(names); i++ {
		st.Add(e.tr(names[i], "sco", names[i+1]))
	}
	m := Materialize(st, RDFSRules(e.voc))
	for _, c := range names {
		if !m.Store().Contains(e.tr("x", "type", c)) {
			t.Errorf("missing x type %s", c)
		}
	}
	// Transitive schema closure: C0 ⊑ C9.
	if !m.Store().Contains(e.tr("C0", "sco", "C9")) {
		t.Error("missing transitive subclass edge C0 ⊑ C9")
	}
	// Expected closure size: 10 type triples + C(10,2)=45 subclass pairs.
	if got := m.Store().Len(); got != 10+45 {
		t.Errorf("closure size = %d, want 55", got)
	}
}

func TestSaturateInteractionDomainSubproperty(t *testing.T) {
	// p1 ⊑ p2, p2 domain C, x p1 y ⇒ x type C — requires either ext-dom-sp
	// then rdfs2, or rdfs7 then rdfs2; both paths must land on the same
	// closure.
	e := newEnv()
	m := Materialize(e.storeOf(
		e.tr("p1", "spo", "p2"),
		e.tr("p2", "dom", "C"),
		e.tr("x", "p1", "y"),
	), RDFSRules(e.voc))
	for _, w := range []store.Triple{
		e.tr("x", "p2", "y"),
		e.tr("x", "type", "C"),
		e.tr("p1", "dom", "C"),
	} {
		if !m.Store().Contains(w) {
			t.Errorf("missing %v", w)
		}
	}
}

func TestSaturationIsIdempotentAndMonotone(t *testing.T) {
	e := newEnv()
	g := e.tomGraph()
	m1 := Materialize(g, RDFSRules(e.voc))
	m2 := Materialize(m1.Store(), RDFSRules(e.voc))
	if m1.Store().Len() != m2.Store().Len() {
		t.Errorf("saturating a saturation changed size: %d -> %d", m1.Store().Len(), m2.Store().Len())
	}
	if m2.Stats.Derived != 0 {
		t.Errorf("re-saturation derived %d new triples, want 0", m2.Stats.Derived)
	}
	// Monotone: input preserved.
	g.ForEachMatch(store.Triple{}, func(tr store.Triple) bool {
		if !m1.Store().Contains(tr) {
			t.Errorf("input triple %v lost", tr)
		}
		return true
	})
}

func TestInsertMatchesResaturation(t *testing.T) {
	e := newEnv()
	base := []store.Triple{
		e.tr("Student", "sco", "Person"),
		e.tr("advises", "spo", "knows"),
		e.tr("advises", "dom", "Professor"),
		e.tr("advises", "rng", "Student"),
		e.tr("Professor", "sco", "Person"),
		e.tr("a", "advises", "b"),
	}
	inserts := [][]store.Triple{
		{e.tr("c", "advises", "d")},                            // instance insert
		{e.tr("c", "type", "Student")},                         // type insert
		{e.tr("Person", "sco", "Agent")},                       // schema insert
		{e.tr("knows", "dom", "Person")},                       // schema insert (domain)
		{e.tr("e", "advises", "f"), e.tr("f", "type", "Dean")}, // batch
	}
	rules := RDFSRules(e.voc)
	m := Materialize(e.storeOf(base...), rules)
	all := append([]store.Triple{}, base...)
	for _, batch := range inserts {
		m.Insert(batch...)
		all = append(all, batch...)
		want := Materialize(e.storeOf(all...), rules)
		if !storesEqual(m.Store(), want.Store()) {
			t.Fatalf("after inserting %v: incremental store (%d triples) != resaturation (%d triples)",
				batch, m.Store().Len(), want.Store().Len())
		}
	}
}

func TestInsertDuplicateIsNoop(t *testing.T) {
	e := newEnv()
	m := Materialize(e.tomGraph(), RDFSRules(e.voc))
	before := m.Store().Len()
	if n := m.Insert(e.tr("tom", "type", "Cat")); n != 0 {
		t.Errorf("Insert of existing base triple reported %d new", n)
	}
	// Inserting an already-derived triple as base must keep the store
	// unchanged but record the base status.
	if n := m.Insert(e.tr("tom", "type", "Mammal")); n != 1 {
		t.Errorf("Insert of derived-but-new-base triple reported %d, want 1", n)
	}
	if m.Store().Len() != before {
		t.Errorf("store size changed from %d to %d", before, m.Store().Len())
	}
	if !m.IsBase(e.tr("tom", "type", "Mammal")) {
		t.Error("triple should now be base")
	}
}

func storesEqual(a, b *store.Store) bool {
	if a.Len() != b.Len() {
		return false
	}
	equal := true
	a.ForEachMatch(store.Triple{}, func(t store.Triple) bool {
		if !b.Contains(t) {
			equal = false
			return false
		}
		return true
	})
	return equal
}

func TestDeleteInstanceTriple(t *testing.T) {
	e := newEnv()
	m := Materialize(e.tomGraph(), RDFSRules(e.voc))
	if n := m.Delete(e.tr("tom", "type", "Cat")); n != 1 {
		t.Fatalf("Delete returned %d, want 1", n)
	}
	if m.Store().Contains(e.tr("tom", "type", "Mammal")) {
		t.Error("derived triple survived deletion of its only support")
	}
	if m.Store().Contains(e.tr("tom", "type", "Cat")) {
		t.Error("deleted base triple still present")
	}
	if !m.Store().Contains(e.tr("Cat", "sco", "Mammal")) {
		t.Error("unrelated schema triple was lost")
	}
}

func TestDeleteKeepsMultiplySupportedTriples(t *testing.T) {
	// tom type Mammal is supported both via Cat ⊑ Mammal and via
	// explicit assertion; deleting the Cat path must keep it.
	e := newEnv()
	st := e.tomGraph()
	st.Add(e.tr("tom", "type", "Mammal")) // explicitly asserted too
	m := Materialize(st, RDFSRules(e.voc))
	m.Delete(e.tr("tom", "type", "Cat"))
	if !m.Store().Contains(e.tr("tom", "type", "Mammal")) {
		t.Error("explicitly asserted triple deleted by DRed")
	}
}

func TestDeleteRederivesThroughAlternatePath(t *testing.T) {
	// x type C derivable via two properties; deleting one leaves the other.
	e := newEnv()
	st := e.storeOf(
		e.tr("p", "dom", "C"),
		e.tr("q", "dom", "C"),
		e.tr("x", "p", "y"),
		e.tr("x", "q", "z"),
	)
	m := Materialize(st, RDFSRules(e.voc))
	m.Delete(e.tr("x", "p", "y"))
	if !m.Store().Contains(e.tr("x", "type", "C")) {
		t.Error("triple with surviving alternate derivation was lost")
	}
	m.Delete(e.tr("x", "q", "z"))
	if m.Store().Contains(e.tr("x", "type", "C")) {
		t.Error("triple with no remaining derivation survived")
	}
}

func TestDeleteSchemaTriple(t *testing.T) {
	// Deleting C1 ⊑ C2 from a chain C0 ⊑ C1 ⊑ C2 must remove the entailed
	// C0 ⊑ C2 and the propagated instance types, but keep what C0 ⊑ C1
	// still justifies.
	e := newEnv()
	st := e.storeOf(
		e.tr("C0", "sco", "C1"),
		e.tr("C1", "sco", "C2"),
		e.tr("x", "type", "C0"),
	)
	m := Materialize(st, RDFSRules(e.voc))
	for _, w := range []store.Triple{e.tr("x", "type", "C1"), e.tr("x", "type", "C2"), e.tr("C0", "sco", "C2")} {
		if !m.Store().Contains(w) {
			t.Fatalf("setup: missing %v", w)
		}
	}
	m.Delete(e.tr("C1", "sco", "C2"))
	if m.Store().Contains(e.tr("x", "type", "C2")) || m.Store().Contains(e.tr("C0", "sco", "C2")) {
		t.Error("triples depending only on the deleted schema edge survived")
	}
	if !m.Store().Contains(e.tr("x", "type", "C1")) {
		t.Error("x type C1 should survive (justified by C0 ⊑ C1)")
	}
}

func TestDeleteMatchesResaturation(t *testing.T) {
	// Randomised-ish scenario: delete each base triple in turn from a graph
	// with interleaved derivations and compare against full resaturation.
	e := newEnv()
	base := []store.Triple{
		e.tr("GradStudent", "sco", "Student"),
		e.tr("Student", "sco", "Person"),
		e.tr("Professor", "sco", "Person"),
		e.tr("advises", "spo", "knows"),
		e.tr("knows", "dom", "Person"),
		e.tr("advises", "rng", "GradStudent"),
		e.tr("a", "advises", "b"),
		e.tr("b", "type", "GradStudent"),
		e.tr("a", "type", "Professor"),
		e.tr("c", "knows", "a"),
	}
	rules := RDFSRules(e.voc)
	for i := range base {
		m := Materialize(e.storeOf(base...), rules)
		m.Delete(base[i])
		remaining := append(append([]store.Triple{}, base[:i]...), base[i+1:]...)
		want := Materialize(e.storeOf(remaining...), rules)
		if !storesEqual(m.Store(), want.Store()) {
			t.Errorf("deleting %v: DRed result (%d) differs from resaturation (%d)",
				base[i], m.Store().Len(), want.Store().Len())
		}
	}
}

func TestDeleteNonexistentIsNoop(t *testing.T) {
	e := newEnv()
	m := Materialize(e.tomGraph(), RDFSRules(e.voc))
	before := m.Store().Len()
	if n := m.Delete(e.tr("nobody", "type", "Nothing")); n != 0 {
		t.Errorf("Delete of absent triple returned %d", n)
	}
	// Deleting a derived (non-base) triple is also a no-op: only explicit
	// assertions can be retracted.
	if n := m.Delete(e.tr("tom", "type", "Mammal")); n != 0 {
		t.Errorf("Delete of derived triple returned %d", n)
	}
	if m.Store().Len() != before {
		t.Error("no-op deletes changed the store")
	}
}

func TestCloneIndependence(t *testing.T) {
	e := newEnv()
	m := Materialize(e.tomGraph(), RDFSRules(e.voc))
	c := m.Clone()
	c.Delete(e.tr("tom", "type", "Cat"))
	if !m.Store().Contains(e.tr("tom", "type", "Mammal")) {
		t.Error("deleting from clone affected original")
	}
	if c.Store().Contains(e.tr("tom", "type", "Mammal")) {
		t.Error("clone deletion had no effect")
	}
}

func TestSaturateStatsAndHelper(t *testing.T) {
	e := newEnv()
	st, stats := Saturate(e.tomGraph(), RDFSRules(e.voc))
	if st.Len() != 3 {
		t.Errorf("Saturate store len = %d, want 3", st.Len())
	}
	if stats.Derived != 1 {
		t.Errorf("stats.Derived = %d, want 1", stats.Derived)
	}
	if stats.Rounds < 1 {
		t.Error("stats.Rounds should be at least 1")
	}
}

func TestUserDefinedRule(t *testing.T) {
	// Oracle-style user rule (Section II-C): x worksWith y ∧ y worksWith z
	// ⊢ x worksWith z (a custom transitive property).
	e := newEnv()
	ww := e.id("worksWith")
	custom := Rule{
		Name: "user-trans", Doc: "worksWith is transitive",
		Premises: [2]Pattern{
			{S: V(0), P: C(ww), O: V(1)},
			{S: V(1), P: C(ww), O: V(2)},
		},
		Conclusion: Pattern{S: V(0), P: C(ww), O: V(2)},
		NVars:      3,
	}
	if err := custom.Validate(); err != nil {
		t.Fatal(err)
	}
	rules := append(RDFSRules(e.voc), custom)
	m := Materialize(e.storeOf(
		e.tr("a", "worksWith", "b"),
		e.tr("b", "worksWith", "c"),
		e.tr("c", "worksWith", "d"),
	), rules)
	for _, w := range []store.Triple{
		e.tr("a", "worksWith", "c"),
		e.tr("a", "worksWith", "d"),
		e.tr("b", "worksWith", "d"),
	} {
		if !m.Store().Contains(w) {
			t.Errorf("missing %v", w)
		}
	}
}

func TestExplainProofTree(t *testing.T) {
	e := newEnv()
	m := Materialize(e.tomGraph(), RDFSRules(e.voc))
	d := m.Explain(e.tr("tom", "type", "Mammal"))
	if d == nil {
		t.Fatal("no derivation found for entailed triple")
	}
	if d.Rule != "rdfs9" {
		t.Errorf("derivation rule = %q, want rdfs9", d.Rule)
	}
	if len(d.Premises) != 2 {
		t.Fatalf("derivation has %d premises, want 2", len(d.Premises))
	}
	for _, p := range d.Premises {
		if p.Rule != "" {
			t.Errorf("premise %v should be a base fact", p.Triple)
		}
	}
	// Base triples explain themselves.
	if d := m.Explain(e.tr("tom", "type", "Cat")); d == nil || d.Rule != "" {
		t.Error("base triple should have an [asserted] leaf derivation")
	}
	// Absent triples have no derivation.
	if m.Explain(e.tr("tom", "type", "Fish")) != nil {
		t.Error("absent triple should have nil derivation")
	}
	// Formatting mentions the rule and the assertion markers.
	text := d.Format(e.d)
	if text == "" {
		t.Error("empty formatted derivation")
	}
}

// naiveClosure computes the fixpoint of rules over base by brute force:
// repeatedly join every pair of triples under every rule via slices, no
// iteration over a store that is being mutated. It is the oracle for
// saturation correctness under rules whose conclusions land in the very
// index leaves the semi-naive engine enumerates.
func naiveClosure(base []store.Triple, rules []Rule) map[store.Triple]struct{} {
	out := map[store.Triple]struct{}{}
	for _, t := range base {
		out[t] = struct{}{}
	}
	for changed := true; changed; {
		changed = false
		all := make([]store.Triple, 0, len(out))
		for t := range out {
			all = append(all, t)
		}
		for ri := range rules {
			r := &rules[ri]
			for _, t := range all {
				b := make([]dict.ID, r.NVars)
				if !matchPattern(r.Premises[0], t, b) {
					continue
				}
				for _, u := range all {
					b2 := make([]dict.ID, r.NVars)
					copy(b2, b)
					if !matchPattern(r.Premises[1], u, b2) {
						continue
					}
					c := instantiate(r.Conclusion, b2)
					if _, ok := out[c]; !ok {
						out[c] = struct{}{}
						changed = true
					}
				}
			}
		}
	}
	return out
}

// TestSaturateConclusionIntoIteratedLeaf exercises a user-defined rule whose
// conclusion is inserted into the same postings leaf the join is currently
// enumerating: premise 2 scans the (V1, p2, ?) leaf and the conclusion is
// (V1, p2, K). The packed-key store forbids mutation during ForEachMatch,
// so forEachInstantiation must buffer instantiations before applying them;
// this test pins that behavior against a brute-force closure, with enough
// objects in the leaf to cross the slice→set promotion threshold.
func TestSaturateConclusionIntoIteratedLeaf(t *testing.T) {
	const (
		p1 = dict.ID(1)
		p2 = dict.ID(2)
		k  = dict.ID(99)
	)
	rule := Rule{
		Name: "leaf-self-insert",
		Premises: [2]Pattern{
			{S: V(0), P: C(p1), O: V(1)},
			{S: V(1), P: C(p2), O: V(2)},
		},
		Conclusion: Pattern{S: V(1), P: C(p2), O: C(k)},
		NVars:      3,
	}
	if err := rule.Validate(); err != nil {
		t.Fatal(err)
	}
	base := []store.Triple{{S: 10, P: p1, O: 20}}
	// Fill the (20, p2) leaf well past promoteAt so the enumeration spans
	// both leaf representations.
	for o := dict.ID(30); o < 30+40; o++ {
		base = append(base, store.Triple{S: 20, P: p2, O: o})
	}
	g := store.New()
	for _, tr := range base {
		g.Add(tr)
	}
	want := naiveClosure(base, []Rule{rule})

	for name, got := range map[string]*store.Store{
		"materialize": Materialize(g, []Rule{rule}).Store(),
		"counting":    MaterializeCounting(g, []Rule{rule}).Store(),
		"parallel":    MaterializeParallel(g, []Rule{rule}, 2).Store(),
	} {
		if got.Len() != len(want) {
			t.Errorf("%s: closure has %d triples, want %d", name, got.Len(), len(want))
			continue
		}
		for tr := range want {
			if !got.Contains(tr) {
				t.Errorf("%s: closure missing %v", name, tr)
			}
		}
	}
}
