package reason

import (
	"repro/internal/dict"
	"repro/internal/store"
)

// scratch holds reusable variable-binding buffers for rule matching. The
// join inner loop (forEachInstantiation and the re-derivation check) used to
// allocate fresh []dict.ID binding vectors on every call, which dominated
// the allocation profile of saturation; each Materialization/Counting owns
// one scratch (and each parallel worker its own), so the hot path reuses the
// same few words instead. Not safe for concurrent use — which matches the
// store's own concurrency contract.
type scratch struct {
	b, b2, b3 []dict.ID
	// pairs buffers (conclusion, partner) results of one instantiation
	// enumeration so callbacks run only after the store iteration has
	// finished — the store forbids mutation during ForEachMatch, and
	// seminaive/propagate callbacks Add conclusions to the store.
	pairs []conclusionPartner
}

type conclusionPartner struct {
	conclusion, partner store.Triple
}

// grow ensures all three buffers have length n. Only b is cleared to
// dict.None (the "unbound" marker matchPattern expects); b2 and b3 are
// always fully overwritten by copy before use.
func (sc *scratch) grow(n int) {
	if cap(sc.b) < n {
		sc.b = make([]dict.ID, n)
		sc.b2 = make([]dict.ID, n)
		sc.b3 = make([]dict.ID, n)
	}
	sc.b = sc.b[:n]
	sc.b2 = sc.b2[:n]
	sc.b3 = sc.b3[:n]
	for i := range sc.b {
		sc.b[i] = dict.None
	}
}
