package reason

import (
	"repro/internal/store"
)

// Materialization is a saturated RDF graph with enough bookkeeping to
// maintain the saturation under updates: the store holds G∞ = base ∪
// derived, and the base store records which triples were explicitly asserted
// (the "G" of the paper). Deletion maintenance uses DRed
// (delete-and-rederive), which is sound for the recursive RDFS rules; see
// Counting for the cheaper but cycle-unsafe alternative of [11].
//
// Both stores support O(1) copy-on-write snapshots, which is what lets the
// persistence layer checkpoint a live materialization (base G and saturated
// G∞ together, at a mutation-batch boundary) without stalling the writer.
type Materialization struct {
	st    *store.Store
	base  *store.TripleSet
	rules []Rule
	sc    scratch // reusable binding buffers for the join hot path

	// Stats accumulates counters for the most recent operation.
	Stats Stats
}

// Stats reports work done by a saturation or maintenance operation.
type Stats struct {
	// Rounds is the number of semi-naive iterations.
	Rounds int
	// Derived is the number of triples added by rules (not base).
	Derived int
	// Overdeleted is the number of triples removed during DRed overdeletion.
	Overdeleted int
	// Rederived is the number of overdeleted triples put back.
	Rederived int
}

// Materialize saturates the triples of g under the rules and returns the
// resulting materialization. The input store is not modified.
func Materialize(g *store.Store, rules []Rule) *Materialization {
	m := &Materialization{
		st:    store.NewWithCapacity(g.Len()),
		base:  store.NewTripleSet(g.Len()),
		rules: rules,
	}
	delta := make([]store.Triple, 0, g.Len())
	g.ForEachMatch(store.Triple{}, func(t store.Triple) bool {
		m.base.Add(t)
		m.st.Add(t)
		delta = append(delta, t)
		return true
	})
	m.Stats = Stats{}
	m.seminaive(delta)
	return m
}

// Restore rebuilds a materialization from a previously saturated state
// without re-running saturation: base is the set of asserted triples G,
// saturated is its closure G∞ under the same rules (typically both just
// loaded from a snapshot — the snapshot codec guarantees integrity, this
// constructor trusts the pair). It takes ownership of both containers.
func Restore(base *store.TripleSet, saturated *store.Store, rules []Rule) *Materialization {
	return &Materialization{st: saturated, base: base, rules: rules}
}

// Store exposes the saturated store (G∞). Callers must not mutate it
// directly; use Insert/Delete so the materialization stays consistent.
func (m *Materialization) Store() *store.Store { return m.st }

// BaseSet exposes the set of explicitly asserted triples (G). Callers must
// not mutate it directly; use Insert/Delete. Like the store, it supports
// O(1) snapshots for checkpointing.
func (m *Materialization) BaseSet() *store.TripleSet { return m.base }

// IsBase reports whether t was explicitly asserted.
func (m *Materialization) IsBase(t store.Triple) bool { return m.base.Contains(t) }

// BaseLen returns |G| and DerivedLen returns |G∞| − |G|.
func (m *Materialization) BaseLen() int    { return m.base.Len() }
func (m *Materialization) DerivedLen() int { return m.st.Len() - m.base.Len() }

// Rules returns the rule set the materialization maintains.
func (m *Materialization) Rules() []Rule { return m.rules }

// Clone returns an independent copy (used by benchmarks to restore state
// between destructive runs).
func (m *Materialization) Clone() *Materialization {
	return &Materialization{
		st:    m.st.Clone(),
		base:  m.base.Clone(),
		rules: m.rules,
	}
}

// forEachInstantiation enumerates, for a triple t playing premise position
// pos of rule r, every rule instantiation against partner triples currently
// in st; fn receives the instantiated conclusion and the partner premise.
// The binding vectors come from sc, so the call allocates nothing at steady
// state; fn must not re-enter forEachInstantiation with the same scratch.
//
// Instantiations are buffered and fn runs only after the store enumeration
// has finished: the store forbids mutation during ForEachMatch, and the
// seminaive/propagate callbacks Add conclusions (which may land in the very
// postings leaf being iterated). Conclusions added by fn therefore never
// join the current enumeration — the semi-naive outer loop picks them up as
// the next delta.
//
//webreason:hotpath
func forEachInstantiation(st *store.Store, r *Rule, pos int, t store.Triple, sc *scratch, fn func(conclusion, partner store.Triple)) {
	sc.grow(r.NVars)
	b, b2 := sc.b, sc.b2
	if !matchPattern(r.Premises[pos], t, b) {
		return
	}
	other := 1 - pos
	partnerPat := instantiate(r.Premises[other], b)
	sc.pairs = sc.pairs[:0]
	st.ForEachMatch(partnerPat, func(u store.Triple) bool {
		copy(b2, b)
		if matchPattern(r.Premises[other], u, b2) {
			sc.pairs = append(sc.pairs, conclusionPartner{instantiate(r.Conclusion, b2), u})
		}
		return true
	})
	for _, cp := range sc.pairs {
		fn(cp.conclusion, cp.partner)
	}
}

// seminaive runs delta-driven forward chaining until fixpoint: each round,
// every rule is joined with the previous round's new triples in either
// premise position against the full current store. Duplicates are absorbed
// by the store's set semantics.
func (m *Materialization) seminaive(delta []store.Triple) {
	for len(delta) > 0 {
		m.Stats.Rounds++
		var next []store.Triple
		for _, t := range delta {
			for ri := range m.rules {
				r := &m.rules[ri]
				for pos := 0; pos < 2; pos++ {
					forEachInstantiation(m.st, r, pos, t, &m.sc, func(c, _ store.Triple) {
						if m.st.Add(c) {
							m.Stats.Derived++
							next = append(next, c)
						}
					})
				}
			}
		}
		delta = next
	}
}

// Insert adds base triples and incrementally maintains the saturation by
// semi-naive propagation from the new triples (insertion maintenance is the
// cheap direction, as the paper notes; deletions are the hard part).
// It returns the number of base triples that were actually new.
func (m *Materialization) Insert(ts ...store.Triple) int {
	m.Stats = Stats{}
	var delta []store.Triple
	added := 0
	for _, t := range ts {
		if !m.base.Add(t) {
			continue
		}
		added++
		if m.st.Add(t) {
			delta = append(delta, t)
		}
	}
	m.seminaive(delta)
	return added
}

// Delete removes base triples and maintains the saturation with DRed:
// (1) overdelete everything transitively derived using a deleted triple,
// (2) re-derive whatever is still entailed by the remaining graph.
// It returns the number of base triples actually removed.
func (m *Materialization) Delete(ts ...store.Triple) int {
	m.Stats = Stats{}
	// Phase 0: retract base facts.
	removedBase := 0
	var seeds []store.Triple
	for _, t := range ts {
		if !m.base.Remove(t) {
			continue
		}
		removedBase++
		seeds = append(seeds, t)
	}
	if removedBase == 0 {
		return 0
	}

	// Phase 1: overdeletion. Compute the set of triples whose derivations
	// may involve a deleted triple, joining against the still-intact store
	// so every instantiation that existed before the deletion is seen.
	over := make(map[store.Triple]struct{})
	queue := make([]store.Triple, 0, len(seeds))
	for _, t := range seeds {
		if _, ok := over[t]; !ok {
			over[t] = struct{}{}
			queue = append(queue, t)
		}
	}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		for ri := range m.rules {
			r := &m.rules[ri]
			for pos := 0; pos < 2; pos++ {
				forEachInstantiation(m.st, r, pos, t, &m.sc, func(c, _ store.Triple) {
					if _, dead := over[c]; dead {
						return
					}
					if m.base.Contains(c) {
						return // still explicitly asserted: keep
					}
					if !m.st.Contains(c) {
						return
					}
					over[c] = struct{}{}
					queue = append(queue, c)
				})
			}
		}
	}

	// Physically remove the overdeleted triples.
	for t := range over {
		m.st.Remove(t)
	}
	m.Stats.Overdeleted = len(over)

	// Phase 2: re-derivation. An overdeleted triple survives if some rule
	// instantiation over the remaining store still concludes it; re-derived
	// triples then propagate semi-naively (they may resurrect others).
	var redelta []store.Triple
	for t := range over {
		if m.derivableOneStep(t) {
			m.st.Add(t)
			m.Stats.Rederived++
			redelta = append(redelta, t)
		}
	}
	m.seminaive(redelta)
	return removedBase
}

// derivableOneStep reports whether some rule instantiation over the current
// store concludes t. It shares the materialization's scratch buffers (it is
// never nested inside forEachInstantiation).
func (m *Materialization) derivableOneStep(t store.Triple) bool {
	for ri := range m.rules {
		r := &m.rules[ri]
		m.sc.grow(r.NVars)
		b, b2, b3 := m.sc.b, m.sc.b2, m.sc.b3
		if !matchPattern(r.Conclusion, t, b) {
			continue
		}
		found := false
		p0 := instantiate(r.Premises[0], b)
		m.st.ForEachMatch(p0, func(u store.Triple) bool {
			copy(b2, b)
			if !matchPattern(r.Premises[0], u, b2) {
				return true
			}
			p1 := instantiate(r.Premises[1], b2)
			m.st.ForEachMatch(p1, func(v store.Triple) bool {
				copy(b3, b2)
				if matchPattern(r.Premises[1], v, b3) && instantiate(r.Conclusion, b3) == t {
					found = true
					return false
				}
				return true
			})
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// Saturate is a convenience wrapper: it returns a new store holding the
// closure of g under rules, plus saturation stats.
func Saturate(g *store.Store, rules []Rule) (*store.Store, Stats) {
	m := Materialize(g, rules)
	return m.st, m.Stats
}
