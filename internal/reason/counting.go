package reason

import (
	"repro/internal/store"
)

// Counting is the derivation-counting truth-maintenance alternative to DRed,
// the "naive practical approach" of Broekstra & Kampman [11] that the paper
// cites for saturation maintenance. Each triple carries the number of
// distinct one-step rule instantiations that conclude it, plus one unit of
// support when it is explicitly asserted; a deletion decrements supports and
// cascades when a count reaches zero.
//
// Counting is faster than DRed on deletions (no re-derivation pass) but is
// only sound when the derivation graph is acyclic: triples on a support
// cycle (e.g. c1 ⊑ c2 ⊑ c1) keep each other alive. The benchmark suite (E7)
// measures both; the property tests cross-check Counting against full
// resaturation on the acyclic LUBM-style ontologies where it applies.
type Counting struct {
	st    *store.Store
	rules []Rule

	base map[store.Triple]struct{}
	sc   scratch // reusable binding buffers for the join hot path
	// derivations[t] = number of distinct rule instantiations over the
	// current store concluding t.
	derivations map[store.Triple]int
	// seq stamps triples with the order they became present; it is used to
	// count each instantiation exactly once during insert propagation.
	seq     map[store.Triple]int
	nextSeq int

	// Stats mirrors Materialization.Stats for the most recent operation.
	Stats Stats
}

// MaterializeCounting saturates g under rules, tracking derivation counts.
func MaterializeCounting(g *store.Store, rules []Rule) *Counting {
	c := &Counting{
		st:          store.NewWithCapacity(g.Len()),
		rules:       rules,
		base:        make(map[store.Triple]struct{}, g.Len()),
		derivations: make(map[store.Triple]int),
		seq:         make(map[store.Triple]int, g.Len()),
	}
	var delta []store.Triple
	g.ForEachMatch(store.Triple{}, func(t store.Triple) bool {
		c.base[t] = struct{}{}
		c.st.Add(t)
		c.seq[t] = c.nextSeq
		c.nextSeq++
		delta = append(delta, t)
		return true
	})
	c.Stats = Stats{}
	c.propagate(delta)
	return c
}

// Store exposes the saturated store; callers must not mutate it directly.
func (c *Counting) Store() *store.Store { return c.st }

// IsBase reports whether t is explicitly asserted.
func (c *Counting) IsBase(t store.Triple) bool {
	_, ok := c.base[t]
	return ok
}

// BaseLen returns |G|, DerivedLen |G∞|−|G|.
func (c *Counting) BaseLen() int    { return len(c.base) }
func (c *Counting) DerivedLen() int { return c.st.Len() - len(c.base) }

// DerivationCount returns the current number of one-step derivations of t.
func (c *Counting) DerivationCount(t store.Triple) int { return c.derivations[t] }

// propagate performs counted semi-naive insertion from delta. For each new
// triple t and each rule, instantiations are counted from t's premise
// position only when the partner triple became present no later than t
// (strictly earlier when t sits in the second position), so every
// instantiation is counted exactly once no matter how many of its premises
// are new.
func (c *Counting) propagate(delta []store.Triple) {
	for len(delta) > 0 {
		c.Stats.Rounds++
		var next []store.Triple
		for _, t := range delta {
			st := c.seq[t]
			for ri := range c.rules {
				r := &c.rules[ri]
				for pos := 0; pos < 2; pos++ {
					forEachInstantiation(c.st, r, pos, t, &c.sc, func(conc, partner store.Triple) {
						sp := c.seq[partner]
						// Count the instantiation from the premise with the
						// larger stamp; on equal stamps (partner == t) from
						// position 0 only.
						if sp > st || (sp == st && pos == 1) {
							return
						}
						c.derivations[conc]++
						if c.st.Add(conc) {
							c.Stats.Derived++
							c.seq[conc] = c.nextSeq
							c.nextSeq++
							next = append(next, conc)
						}
					})
				}
			}
		}
		delta = next
	}
}

// Insert adds base triples, maintaining counts. Returns how many were new
// base facts.
func (c *Counting) Insert(ts ...store.Triple) int {
	c.Stats = Stats{}
	var delta []store.Triple
	added := 0
	for _, t := range ts {
		if _, ok := c.base[t]; ok {
			continue
		}
		c.base[t] = struct{}{}
		added++
		if c.st.Add(t) {
			c.seq[t] = c.nextSeq
			c.nextSeq++
			delta = append(delta, t)
		}
	}
	c.propagate(delta)
	return added
}

// Delete retracts base triples. A triple disappears when it is neither base
// nor supported by any derivation; disappearing triples decrement the
// counts of everything they helped derive, processed one at a time so each
// dead instantiation is decremented exactly once.
func (c *Counting) Delete(ts ...store.Triple) int {
	c.Stats = Stats{}
	removed := 0
	var queue []store.Triple
	for _, t := range ts {
		if _, ok := c.base[t]; !ok {
			continue
		}
		delete(c.base, t)
		removed++
		if c.derivations[t] == 0 {
			queue = append(queue, t)
		}
	}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		if !c.st.Contains(t) {
			continue
		}
		// t dies now. Remove it first so later deaths do not re-enumerate
		// instantiations involving it.
		c.st.Remove(t)
		delete(c.seq, t)
		c.Stats.Overdeleted++
		for ri := range c.rules {
			r := &c.rules[ri]
			for pos := 0; pos < 2; pos++ {
				forEachInstantiation(c.st, r, pos, t, &c.sc, func(conc, _ store.Triple) {
					if !c.st.Contains(conc) {
						return
					}
					c.derivations[conc]--
					if c.derivations[conc] <= 0 {
						delete(c.derivations, conc)
						if _, isBase := c.base[conc]; !isBase {
							queue = append(queue, conc)
						}
					}
				})
			}
		}
		delete(c.derivations, t)
	}
	return removed
}
