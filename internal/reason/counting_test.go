package reason

import (
	"math/rand"
	"testing"

	"repro/internal/store"
)

func TestCountingSaturationMatchesDRed(t *testing.T) {
	e := newEnv()
	g := e.storeOf(
		e.tr("Student", "sco", "Person"),
		e.tr("advises", "spo", "knows"),
		e.tr("advises", "dom", "Professor"),
		e.tr("Professor", "sco", "Person"),
		e.tr("a", "advises", "b"),
		e.tr("b", "type", "Student"),
	)
	rules := RDFSRules(e.voc)
	m := Materialize(g, rules)
	c := MaterializeCounting(g, rules)
	if !storesEqual(m.Store(), c.Store()) {
		t.Fatalf("counting closure (%d) differs from DRed closure (%d)",
			c.Store().Len(), m.Store().Len())
	}
	if c.BaseLen() != m.BaseLen() || c.DerivedLen() != m.DerivedLen() {
		t.Error("base/derived accounting differs between engines")
	}
}

func TestCountingTracksMultipleDerivations(t *testing.T) {
	// x type C has two distinct derivations (via p and via q).
	e := newEnv()
	g := e.storeOf(
		e.tr("p", "dom", "C"),
		e.tr("q", "dom", "C"),
		e.tr("x", "p", "y"),
		e.tr("x", "q", "z"),
	)
	c := MaterializeCounting(g, RDFSRules(e.voc))
	if n := c.DerivationCount(e.tr("x", "type", "C")); n != 2 {
		t.Errorf("derivation count = %d, want 2", n)
	}
	// Deleting one support keeps the triple, deleting both removes it.
	c.Delete(e.tr("x", "p", "y"))
	if !c.Store().Contains(e.tr("x", "type", "C")) {
		t.Fatal("triple vanished while one derivation remains")
	}
	if n := c.DerivationCount(e.tr("x", "type", "C")); n != 1 {
		t.Errorf("derivation count after delete = %d, want 1", n)
	}
	c.Delete(e.tr("x", "q", "z"))
	if c.Store().Contains(e.tr("x", "type", "C")) {
		t.Fatal("unsupported triple survived")
	}
}

func TestCountingInsertDeleteMatchesResaturation(t *testing.T) {
	e := newEnv()
	base := []store.Triple{
		e.tr("GradStudent", "sco", "Student"),
		e.tr("Student", "sco", "Person"),
		e.tr("advises", "spo", "knows"),
		e.tr("knows", "dom", "Person"),
		e.tr("advises", "rng", "GradStudent"),
		e.tr("a", "advises", "b"),
		e.tr("a", "type", "Professor"),
	}
	rules := RDFSRules(e.voc)
	c := MaterializeCounting(e.storeOf(base...), rules)

	// Insert then delete a batch; compare each state to resaturation.
	batch := []store.Triple{e.tr("b", "advises", "d"), e.tr("d", "type", "GradStudent")}
	c.Insert(batch...)
	want := Materialize(e.storeOf(append(append([]store.Triple{}, base...), batch...)...), rules)
	if !storesEqual(c.Store(), want.Store()) {
		t.Fatalf("after insert: counting (%d) != resaturation (%d)", c.Store().Len(), want.Store().Len())
	}
	c.Delete(batch...)
	want = Materialize(e.storeOf(base...), rules)
	if !storesEqual(c.Store(), want.Store()) {
		t.Fatalf("after delete: counting (%d) != resaturation (%d)", c.Store().Len(), want.Store().Len())
	}
}

func TestCountingSchemaDeletion(t *testing.T) {
	e := newEnv()
	base := []store.Triple{
		e.tr("C0", "sco", "C1"),
		e.tr("C1", "sco", "C2"),
		e.tr("x", "type", "C0"),
	}
	rules := RDFSRules(e.voc)
	c := MaterializeCounting(e.storeOf(base...), rules)
	c.Delete(e.tr("C1", "sco", "C2"))
	want := Materialize(e.storeOf(base[0], base[2]), rules)
	if !storesEqual(c.Store(), want.Store()) {
		t.Errorf("counting schema deletion diverged from resaturation")
	}
}

// TestCountingRandomisedAgainstResaturation drives random insert/delete
// sequences over an acyclic ontology (counting's soundness precondition)
// and cross-checks the maintained store against full resaturation — the
// property-based guarantee DESIGN.md promises for E7.
func TestCountingRandomisedAgainstResaturation(t *testing.T) {
	e := newEnv()
	rules := RDFSRules(e.voc)
	// Fixed acyclic schema.
	schemaTriples := []store.Triple{
		e.tr("A", "sco", "B"),
		e.tr("B", "sco", "C"),
		e.tr("p", "spo", "q"),
		e.tr("q", "dom", "B"),
		e.tr("q", "rng", "C"),
	}
	subjects := []string{"s1", "s2", "s3"}
	classes := []string{"A", "B", "C"}
	props := []string{"p", "q"}

	rng := rand.New(rand.NewSource(7))
	randInstance := func() store.Triple {
		s := subjects[rng.Intn(len(subjects))]
		if rng.Intn(2) == 0 {
			return e.tr(s, "type", classes[rng.Intn(len(classes))])
		}
		return e.tr(s, props[rng.Intn(len(props))], subjects[rng.Intn(len(subjects))])
	}

	c := MaterializeCounting(e.storeOf(schemaTriples...), rules)
	current := map[store.Triple]struct{}{}
	for _, tr := range schemaTriples {
		current[tr] = struct{}{}
	}
	for step := 0; step < 120; step++ {
		tr := randInstance()
		if rng.Intn(2) == 0 {
			c.Insert(tr)
			current[tr] = struct{}{}
		} else {
			c.Delete(tr)
			delete(current, tr)
		}
		baseStore := store.New()
		for x := range current {
			baseStore.Add(x)
		}
		want := Materialize(baseStore, rules)
		if !storesEqual(c.Store(), want.Store()) {
			t.Fatalf("step %d (%v): counting store (%d triples) diverged from resaturation (%d)",
				step, tr, c.Store().Len(), want.Store().Len())
		}
	}
}

func TestCountingDuplicateOperations(t *testing.T) {
	e := newEnv()
	c := MaterializeCounting(e.tomGraph(), RDFSRules(e.voc))
	if n := c.Insert(e.tr("tom", "type", "Cat")); n != 0 {
		t.Error("duplicate insert should be a no-op")
	}
	if n := c.Delete(e.tr("never", "type", "There")); n != 0 {
		t.Error("absent delete should be a no-op")
	}
	if !c.IsBase(e.tr("tom", "type", "Cat")) {
		t.Error("IsBase lost track of base triple")
	}
	if c.IsBase(e.tr("tom", "type", "Mammal")) {
		t.Error("derived triple reported as base")
	}
}
