// Package reason implements the forward-chaining side of the paper: RDF
// entailment rules, graph saturation (the closure G∞ of Section II-A), and
// the saturation-maintenance algorithms for instance and schema updates
// whose costs drive the thresholds of Figure 3.
//
// Rules are declarative values: two triple-pattern premises and a conclusion
// over shared variables. The engine is a small semi-naive Datalog evaluator
// specialised to triples, so the RDFS rule set of Figure 2 is data, not
// code, and user-defined rules (Oracle-style, Section II-C) work unchanged.
package reason

import (
	"fmt"

	"repro/internal/dict"
	"repro/internal/schema"
	"repro/internal/store"
)

// Atom is one position of a rule pattern: either a constant term ID or a
// rule variable (an index local to the rule).
type Atom struct {
	// IsVar distinguishes variables from constants.
	IsVar bool
	// ID is the constant (when !IsVar).
	ID dict.ID
	// Var is the variable index (when IsVar), in [0, Rule.NVars).
	Var int
}

// C returns a constant atom.
func C(id dict.ID) Atom { return Atom{ID: id} }

// V returns a variable atom.
func V(i int) Atom { return Atom{IsVar: true, Var: i} }

// Pattern is a triple pattern over rule atoms.
type Pattern struct {
	S, P, O Atom
}

// Rule is an immediate entailment rule with exactly two premises, the shape
// of every rule in the DB fragment of RDF (Figure 2 plus the schema-level
// rules). Premises and conclusion share variables by index.
type Rule struct {
	// Name is the rule's identifier, e.g. "rdfs9" (paper names where they
	// exist, "ext-*" for the constraint-on-constraint rules of [12]).
	Name string
	// Doc is the human-readable rendering used to reproduce Figure 2.
	Doc string
	// InFigure2 marks the four rules the paper shows in Figure 2.
	InFigure2 bool
	// SchemaOnly marks rules whose conclusion is a schema triple (they
	// implement the schema closure; instance-level rules derive instance
	// triples).
	SchemaOnly bool
	// Premises are the two body patterns.
	Premises [2]Pattern
	// Conclusion is the head pattern; all its variables must appear in the
	// premises (the rules are safe).
	Conclusion Pattern
	// NVars is the number of distinct variables in the rule.
	NVars int
}

// Validate checks rule safety: conclusion variables must occur in premises,
// and variable indexes must be dense in [0, NVars).
func (r *Rule) Validate() error {
	seen := make([]bool, r.NVars)
	record := func(a Atom, where string) error {
		if !a.IsVar {
			return nil
		}
		if a.Var < 0 || a.Var >= r.NVars {
			return fmt.Errorf("rule %s: variable %d out of range in %s", r.Name, a.Var, where)
		}
		seen[a.Var] = true
		return nil
	}
	for i, p := range r.Premises {
		for _, a := range []Atom{p.S, p.P, p.O} {
			if err := record(a, fmt.Sprintf("premise %d", i)); err != nil {
				return err
			}
		}
	}
	for i := range seen {
		if !seen[i] {
			return fmt.Errorf("rule %s: variable %d unused in premises", r.Name, i)
		}
	}
	for _, a := range []Atom{r.Conclusion.S, r.Conclusion.P, r.Conclusion.O} {
		if a.IsVar && (a.Var < 0 || a.Var >= r.NVars) {
			return fmt.Errorf("rule %s: conclusion variable %d out of range", r.Name, a.Var)
		}
		if a.IsVar && !seen[a.Var] {
			return fmt.Errorf("rule %s: conclusion variable %d not bound by premises (unsafe rule)", r.Name, a.Var)
		}
	}
	return nil
}

// RDFSRules returns the entailment rule set of the DB fragment of RDF: the
// four instance-entailment rules of Figure 2 (rdfs2, rdfs3, rdfs7, rdfs9)
// plus the schema-level rules that close the ontology (rdfs5, rdfs11 and the
// four constraint-propagation rules used by [12]).
func RDFSRules(voc schema.Vocab) []Rule {
	// Variable naming convention inside each rule, for readability:
	// 0,1,2 are the first premise's fresh positions in reading order.
	rules := []Rule{
		{
			Name: "rdfs5", Doc: "p1 rdfs:subPropertyOf p2 ∧ p2 rdfs:subPropertyOf p3 ⊢ p1 rdfs:subPropertyOf p3",
			SchemaOnly: true,
			Premises: [2]Pattern{
				{S: V(0), P: C(voc.SubPropertyOf), O: V(1)},
				{S: V(1), P: C(voc.SubPropertyOf), O: V(2)},
			},
			Conclusion: Pattern{S: V(0), P: C(voc.SubPropertyOf), O: V(2)},
			NVars:      3,
		},
		{
			Name: "rdfs11", Doc: "c1 rdfs:subClassOf c2 ∧ c2 rdfs:subClassOf c3 ⊢ c1 rdfs:subClassOf c3",
			SchemaOnly: true,
			Premises: [2]Pattern{
				{S: V(0), P: C(voc.SubClassOf), O: V(1)},
				{S: V(1), P: C(voc.SubClassOf), O: V(2)},
			},
			Conclusion: Pattern{S: V(0), P: C(voc.SubClassOf), O: V(2)},
			NVars:      3,
		},
		{
			Name: "ext-dom-sp", Doc: "p1 rdfs:subPropertyOf p2 ∧ p2 rdfs:domain c ⊢ p1 rdfs:domain c",
			SchemaOnly: true,
			Premises: [2]Pattern{
				{S: V(0), P: C(voc.SubPropertyOf), O: V(1)},
				{S: V(1), P: C(voc.Domain), O: V(2)},
			},
			Conclusion: Pattern{S: V(0), P: C(voc.Domain), O: V(2)},
			NVars:      3,
		},
		{
			Name: "ext-rng-sp", Doc: "p1 rdfs:subPropertyOf p2 ∧ p2 rdfs:range c ⊢ p1 rdfs:range c",
			SchemaOnly: true,
			Premises: [2]Pattern{
				{S: V(0), P: C(voc.SubPropertyOf), O: V(1)},
				{S: V(1), P: C(voc.Range), O: V(2)},
			},
			Conclusion: Pattern{S: V(0), P: C(voc.Range), O: V(2)},
			NVars:      3,
		},
		{
			Name: "ext-dom-sc", Doc: "p rdfs:domain c1 ∧ c1 rdfs:subClassOf c2 ⊢ p rdfs:domain c2",
			SchemaOnly: true,
			Premises: [2]Pattern{
				{S: V(0), P: C(voc.Domain), O: V(1)},
				{S: V(1), P: C(voc.SubClassOf), O: V(2)},
			},
			Conclusion: Pattern{S: V(0), P: C(voc.Domain), O: V(2)},
			NVars:      3,
		},
		{
			Name: "ext-rng-sc", Doc: "p rdfs:range c1 ∧ c1 rdfs:subClassOf c2 ⊢ p rdfs:range c2",
			SchemaOnly: true,
			Premises: [2]Pattern{
				{S: V(0), P: C(voc.Range), O: V(1)},
				{S: V(1), P: C(voc.SubClassOf), O: V(2)},
			},
			Conclusion: Pattern{S: V(0), P: C(voc.Range), O: V(2)},
			NVars:      3,
		},
		{
			Name: "rdfs2", Doc: "p rdfs:domain c ∧ s p o ⊢ s rdf:type c",
			InFigure2: true,
			Premises: [2]Pattern{
				{S: V(0), P: C(voc.Domain), O: V(1)},
				{S: V(2), P: V(0), O: V(3)},
			},
			Conclusion: Pattern{S: V(2), P: C(voc.Type), O: V(1)},
			NVars:      4,
		},
		{
			Name: "rdfs3", Doc: "p rdfs:range c ∧ s p o ⊢ o rdf:type c",
			InFigure2: true,
			Premises: [2]Pattern{
				{S: V(0), P: C(voc.Range), O: V(1)},
				{S: V(2), P: V(0), O: V(3)},
			},
			Conclusion: Pattern{S: V(3), P: C(voc.Type), O: V(1)},
			NVars:      4,
		},
		{
			Name: "rdfs7", Doc: "p1 rdfs:subPropertyOf p2 ∧ s p1 o ⊢ s p2 o",
			InFigure2: true,
			Premises: [2]Pattern{
				{S: V(0), P: C(voc.SubPropertyOf), O: V(1)},
				{S: V(2), P: V(0), O: V(3)},
			},
			Conclusion: Pattern{S: V(2), P: V(1), O: V(3)},
			NVars:      4,
		},
		{
			Name: "rdfs9", Doc: "c1 rdfs:subClassOf c2 ∧ s rdf:type c1 ⊢ s rdf:type c2",
			InFigure2: true,
			Premises: [2]Pattern{
				{S: V(0), P: C(voc.SubClassOf), O: V(1)},
				{S: V(2), P: C(voc.Type), O: V(0)},
			},
			Conclusion: Pattern{S: V(2), P: C(voc.Type), O: V(1)},
			NVars:      3,
		},
	}
	return rules
}

// Figure2Rules returns, in the paper's order, the four rules shown in
// Figure 2 (experiment E2).
func Figure2Rules(voc schema.Vocab) []Rule {
	var byName = map[string]Rule{}
	for _, r := range RDFSRules(voc) {
		if r.InFigure2 {
			byName[r.Name] = r
		}
	}
	return []Rule{byName["rdfs9"], byName["rdfs7"], byName["rdfs2"], byName["rdfs3"]}
}

// matchPattern binds pattern p against concrete triple t, writing variable
// bindings into b (dict.None means "unbound"). It reports whether the match
// is consistent with the bindings already in b.
func matchPattern(p Pattern, t store.Triple, b []dict.ID) bool {
	bind := func(a Atom, v dict.ID) bool {
		if !a.IsVar {
			return a.ID == v
		}
		if b[a.Var] == dict.None {
			b[a.Var] = v
			return true
		}
		return b[a.Var] == v
	}
	return bind(p.S, t.S) && bind(p.P, t.P) && bind(p.O, t.O)
}

// instantiate builds the (possibly partial) triple pattern obtained by
// substituting bindings into p; unbound variables map to dict.None, i.e.
// store wildcards.
func instantiate(p Pattern, b []dict.ID) store.Triple {
	get := func(a Atom) dict.ID {
		if a.IsVar {
			return b[a.Var]
		}
		return a.ID
	}
	return store.Triple{S: get(p.S), P: get(p.P), O: get(p.O)}
}
