package reason

import (
	"fmt"
	"strings"

	"repro/internal/dict"
	"repro/internal/store"
)

// Derivation is a proof tree for an entailed triple: either a base fact
// (Rule == "", no premises) or the conclusion of a rule applied to two
// explained premises. OWLIM-style "justifications" (Section II-C) reduced
// to their essence.
type Derivation struct {
	Triple   store.Triple
	Rule     string
	Premises []*Derivation
}

// Explain returns a proof tree for t over the current saturation, or nil if
// t is not in the saturated store. Base triples explain themselves; derived
// triples are explained by any one rule instantiation whose premises can be
// explained without revisiting a triple already on the current proof path
// (which makes the search terminate even on cyclic schemas).
func (m *Materialization) Explain(t store.Triple) *Derivation {
	if !m.st.Contains(t) {
		return nil
	}
	return m.explain(t, map[store.Triple]bool{})
}

func (m *Materialization) explain(t store.Triple, onPath map[store.Triple]bool) *Derivation {
	if m.IsBase(t) {
		return &Derivation{Triple: t}
	}
	if onPath[t] {
		return nil
	}
	onPath[t] = true
	defer delete(onPath, t)

	var result *Derivation
	for ri := range m.rules {
		if result != nil {
			break
		}
		r := &m.rules[ri]
		b := make([]dict.ID, r.NVars)
		if !matchPattern(r.Conclusion, t, b) {
			continue
		}
		p0 := instantiate(r.Premises[0], b)
		b2 := make([]dict.ID, r.NVars)
		m.st.ForEachMatch(p0, func(u store.Triple) bool {
			copy(b2, b)
			if !matchPattern(r.Premises[0], u, b2) {
				return true
			}
			du := m.explain(u, onPath)
			if du == nil {
				return true
			}
			p1 := instantiate(r.Premises[1], b2)
			b3 := make([]dict.ID, r.NVars)
			m.st.ForEachMatch(p1, func(v store.Triple) bool {
				copy(b3, b2)
				if !matchPattern(r.Premises[1], v, b3) || instantiate(r.Conclusion, b3) != t {
					return true
				}
				dv := m.explain(v, onPath)
				if dv == nil {
					return true
				}
				result = &Derivation{Triple: t, Rule: r.Name, Premises: []*Derivation{du, dv}}
				return false
			})
			return result == nil
		})
	}
	return result
}

// Format renders the proof tree indented, resolving IDs through d.
func (d *Derivation) Format(dic *dict.Dict) string {
	var b strings.Builder
	d.format(dic, &b, 0)
	return b.String()
}

func (d *Derivation) format(dic *dict.Dict, b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	s, _ := dic.Term(d.Triple.S)
	p, _ := dic.Term(d.Triple.P)
	o, _ := dic.Term(d.Triple.O)
	if d.Rule == "" {
		fmt.Fprintf(b, "%s%s %s %s   [asserted]\n", indent, s, p, o)
		return
	}
	fmt.Fprintf(b, "%s%s %s %s   [%s]\n", indent, s, p, o, d.Rule)
	for _, prem := range d.Premises {
		prem.format(dic, b, depth+1)
	}
}
