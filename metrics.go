package webreason

import (
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
)

// serverMetrics is the server's instrumentation surface: nil-safe obs
// handles for every hot-path signal, carried by value on the Server so the
// instrumented paths never chase an extra pointer. When observability is
// off (no ServerOptions.Obs), on is false and every field is nil — the
// instrumented paths pay one predictable branch and skip even the
// time.Now() calls, preserving the uninstrumented cost exactly.
type serverMetrics struct {
	on bool
	// strategy is the serving strategy's name, captured at construction so
	// the hot path never loads the strategy just to label a trace.
	strategy string
	slow     *obs.SlowLog

	// Read path, labeled by strategy. prepared=true/false separates the
	// pooled prepared-plan executions from ad-hoc Query/Ask parses.
	queryLatency    *obs.Histogram
	preparedLatency *obs.Histogram
	queryErrors     *obs.Counter
	planPoolHits    *obs.Counter
	planPoolMisses  *obs.Counter

	// Write path.
	enqueueWait        *obs.Histogram
	rejectedOverloaded *obs.Counter
	rejectedDegraded   *obs.Counter
	applyLatency       *obs.Histogram
	batchSize          *obs.Histogram
	sessionWait        *obs.Histogram
}

// newServerMetrics builds the server's metric families against reg,
// labeled with the serving strategy's name. A nil reg returns a disabled
// (all-nil) value.
func newServerMetrics(reg *obs.Registry, slow *obs.SlowLog, strategy string) serverMetrics {
	if reg == nil {
		return serverMetrics{}
	}
	return serverMetrics{
		on:       true,
		strategy: strategy,
		slow:     slow,
		queryLatency: reg.Histogram("webreason_query_seconds",
			"Query/Ask latency against the current snapshot.", 1e-9,
			"strategy", strategy, "prepared", "false"),
		preparedLatency: reg.Histogram("webreason_query_seconds",
			"Query/Ask latency against the current snapshot.", 1e-9,
			"strategy", strategy, "prepared", "true"),
		queryErrors: reg.Counter("webreason_query_errors_total",
			"Queries that returned an error.", "strategy", strategy),
		planPoolHits: reg.Counter("webreason_prepared_pool_hits_total",
			"Prepared executions served by a pooled plan instance.", "strategy", strategy),
		planPoolMisses: reg.Counter("webreason_prepared_pool_misses_total",
			"Prepared executions that compiled a fresh plan instance.", "strategy", strategy),
		enqueueWait: reg.Histogram("webreason_enqueue_wait_seconds",
			"Time writes spent blocked on MaxPending backpressure.", 1e-9),
		rejectedOverloaded: reg.Counter("webreason_writes_rejected_total",
			"Writes refused by the server.", "reason", "overloaded"),
		rejectedDegraded: reg.Counter("webreason_writes_rejected_total",
			"Writes refused by the server.", "reason", "degraded"),
		applyLatency: reg.Histogram("webreason_apply_seconds",
			"Writer time to log and apply one drained mutation batch.", 1e-9),
		batchSize: reg.Histogram("webreason_apply_batch_calls",
			"Mutation calls per drained batch.", 1),
		sessionWait: reg.Histogram("webreason_session_wait_seconds",
			"Read-your-writes wait before session reads (slow path only).", 1e-9),
	}
}

// registerServerFuncs exposes server state that something already tracks —
// queue depth, watermark lag, degradation — as exposition-time gauges, plus
// the package-level prepared-plan lifecycle counters. Func registration
// replaces by identity, so the second server of a promotion test (or a
// follower reopening against a shared registry) wins the series.
func registerServerFuncs(reg *obs.Registry, s *Server) {
	if reg == nil {
		return
	}
	reg.Func("webreason_queue_depth",
		"Queued-but-unapplied mutation calls (the MaxPending bound applies here).",
		func() float64 {
			s.mu.Lock()
			n := len(s.queue)
			s.mu.Unlock()
			return float64(n)
		})
	reg.Func("webreason_watermark_lag",
		"Accepted mutation calls not yet applied (enqueued - applied).",
		func() float64 {
			s.mu.Lock()
			lag := s.enqueued - s.applied.Load()
			s.mu.Unlock()
			return float64(lag)
		})
	reg.Func("webreason_degraded",
		"1 when the server is in degraded read-only mode.",
		func() float64 {
			if s.Health().Degraded {
				return 1
			}
			return 0
		})
	reg.CounterFunc("webreason_mutations_enqueued_total",
		"Mutation calls accepted into the queue.",
		func() float64 {
			s.mu.Lock()
			n := s.enqueued
			s.mu.Unlock()
			return float64(n)
		})
	reg.CounterFunc("webreason_mutations_applied_total",
		"Mutation calls applied (or, after degradation, refused) by the writer.",
		func() float64 { return float64(s.applied.Load()) })
	reg.CounterFunc("webreason_plan_compiled_total",
		"Prepared-plan full compilations (process-wide).",
		func() float64 { return float64(engine.PlanStats.Compiled.Load()) })
	reg.CounterFunc("webreason_plan_replanned_total",
		"Prepared-plan statistics-only replans (process-wide).",
		func() float64 { return float64(engine.PlanStats.Replanned.Load()) })
	reg.CounterFunc("webreason_plan_rebound_total",
		"Prepared-plan source rebinds (process-wide).",
		func() float64 { return float64(engine.PlanStats.Rebound.Load()) })
	reg.CounterFunc("webreason_refplan_rebuilt_total",
		"Reformulation prepared-union full rebuilds (process-wide).",
		func() float64 { return float64(core.RefPlanStats.Rebuilt.Load()) })
	reg.CounterFunc("webreason_refplan_rebound_total",
		"Reformulation prepared-union branch rebinds (process-wide).",
		func() float64 { return float64(core.RefPlanStats.Rebound.Load()) })
}

// monoBase anchors the read path's latency timestamps. time.Since on a
// monotonic time performs a single monotonic-clock read, where time.Now
// also reads the wall clock; the query paths take two readings per
// execution, so reading offsets from a fixed base nearly halves the
// per-query clock cost.
var monoBase = time.Now()

// monoNow returns the monotonic offset from monoBase; the difference of
// two readings is a query duration.
func monoNow() time.Duration { return time.Since(monoBase) }

// noteQuery records one read-path completion: latency histogram, error
// count, and — when the slow log's threshold is crossed — a full trace.
// Plain arguments (no closures) keep the happy path allocation-free.
func (m *serverMetrics) noteQuery(q *Query, prepared, poolHit bool, d time.Duration, rows int, err error) {
	h := m.queryLatency
	if prepared {
		h = m.preparedLatency
		if poolHit {
			m.planPoolHits.Inc()
		} else {
			m.planPoolMisses.Inc()
		}
	}
	h.Observe(d.Nanoseconds())
	if err != nil {
		m.queryErrors.Inc()
	}
	if m.slow.Note(d) {
		tr := obs.QueryTrace{
			Time:         time.Now(),
			Strategy:     m.strategy,
			Prepared:     prepared,
			PlanCacheHit: poolHit,
			Duration:     d,
			Rows:         rows,
		}
		if q != nil {
			tr.Query = q.String()
		}
		if err != nil {
			tr.Err = err.Error()
		}
		m.slow.Record(tr)
	}
}
