package webreason

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/obs"
)

// AdminHandler serves the operational surface of a Server over HTTP:
//
//	GET /metrics        every family registered on reg, Prometheus text
//	                    exposition format (version 0.0.4)
//	GET /healthz        Server.Health as JSON; 200 while serving normally,
//	                    503 once degraded (load-balancer ready signal)
//	GET /debug/slowlog  retained slow-query traces as a JSON array, oldest
//	                    first; ?threshold=50ms retunes the slow log live
//	GET /debug/pprof/*  the standard runtime profiles
//
// The handler is its own mux (not http.DefaultServeMux), so embedding it in
// a larger process never leaks the profiling endpoints onto a public
// listener by accident. reg and slow may be nil; their endpoints then serve
// empty documents. Bind the result to a loopback or otherwise trusted
// address — it exposes query text and runtime internals.
func AdminHandler(srv *Server, reg *obs.Registry, slow *obs.SlowLog) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := srv.Health()
		w.Header().Set("Content-Type", "application/json")
		if h.Degraded {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(healthJSON(h))
	})
	mux.HandleFunc("/debug/slowlog", func(w http.ResponseWriter, r *http.Request) {
		if t := r.URL.Query().Get("threshold"); t != "" {
			d, err := time.ParseDuration(t)
			if err != nil {
				http.Error(w, "bad threshold: "+err.Error(), http.StatusBadRequest)
				return
			}
			slow.SetThreshold(d)
		}
		traces := slow.Snapshot()
		if traces == nil {
			traces = []obs.QueryTrace{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(traces)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// healthView is Health with the error field rendered as a string (error
// values do not JSON-encode usefully) and durations in both native and
// human-readable form.
type healthView struct {
	Degraded      bool   `json:"degraded"`
	DegradedCause string `json:"degraded_cause,omitempty"`
	Closed        bool   `json:"closed"`
	Role          string `json:"role"`

	Enqueued uint64 `json:"enqueued"`
	Applied  uint64 `json:"applied"`
	Lag      uint64 `json:"lag"`
	Pending  int    `json:"pending"`

	Position          Position `json:"position"`
	ReplicaApplied    Position `json:"replica_applied"`
	ReplicaLagBytes   int64    `json:"replica_lag_bytes"`
	ReplicaLagRecords int64    `json:"replica_lag_records"`
	ReplicaEpoch      uint64   `json:"replica_epoch"`

	WALGeneration          uint64 `json:"wal_generation"`
	WALBytes               int64  `json:"wal_bytes"`
	WALChainBytes          int64  `json:"wal_chain_bytes"`
	WALRecords             int    `json:"wal_records"`
	LastCheckpoint         string `json:"last_checkpoint,omitempty"`
	CheckpointAge          string `json:"checkpoint_age,omitempty"`
	CheckpointFailures     int64  `json:"checkpoint_failures"`
	CheckpointRetryPending bool   `json:"checkpoint_retry_pending"`
	GCRemoveFailures       int64  `json:"gc_remove_failures"`
}

func healthJSON(h Health) healthView {
	v := healthView{
		Degraded:               h.Degraded,
		Closed:                 h.Closed,
		Role:                   h.Role.String(),
		Enqueued:               h.Enqueued,
		Applied:                h.Applied,
		Lag:                    h.Lag,
		Pending:                h.Pending,
		Position:               h.Position,
		ReplicaApplied:         h.ReplicaApplied,
		ReplicaLagBytes:        h.ReplicaLagBytes,
		ReplicaLagRecords:      h.ReplicaLagRecords,
		ReplicaEpoch:           h.ReplicaEpoch,
		WALGeneration:          h.WALGeneration,
		WALBytes:               h.WALBytes,
		WALChainBytes:          h.WALChainBytes,
		WALRecords:             h.WALRecords,
		CheckpointFailures:     h.CheckpointFailures,
		CheckpointRetryPending: h.CheckpointRetryPending,
		GCRemoveFailures:       h.GCRemoveFailures,
	}
	if h.DegradedCause != nil {
		v.DegradedCause = h.DegradedCause.Error()
	}
	if !h.LastCheckpoint.IsZero() {
		v.LastCheckpoint = h.LastCheckpoint.Format(time.RFC3339Nano)
		v.CheckpointAge = h.CheckpointAge.String()
	}
	return v
}

// ServeAdmin binds addr (e.g. "localhost:6060") and serves AdminHandler on
// it in a background goroutine, returning the listening server and the
// address it actually bound (useful with ":0"). The caller shuts it down
// with (*http.Server).Close or Shutdown. Used by cmd/rdfserve's -admin
// flag.
func ServeAdmin(addr string, srv *Server, reg *obs.Registry, slow *obs.SlowLog) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{
		Handler:           AdminHandler(srv, reg, slow),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go hs.Serve(ln)
	return hs, ln.Addr().String(), nil
}
