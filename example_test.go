package webreason_test

import (
	"fmt"
	"sort"
	"strings"
	"time"

	webreason "repro"
)

// ExampleNewKB shows the paper's Section I example end to end: the graph
// asserts only that Tom is a cat and that cats are mammals, yet the mammals
// query returns Tom.
func ExampleNewKB() {
	g, err := webreason.ParseTurtle(strings.NewReader(`
@prefix ex:   <http://example.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:Cat rdfs:subClassOf ex:Mammal .
ex:tom a ex:Cat .
`))
	if err != nil {
		panic(err)
	}
	kb := webreason.NewKB()
	if _, err := kb.LoadGraph(g); err != nil {
		panic(err)
	}
	s := webreason.NewReformulationStrategy(kb)
	q := webreason.MustParseQuery(
		`PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Mammal }`)
	res, err := s.Answer(q)
	if err != nil {
		panic(err)
	}
	for _, row := range res.Sort().Decode(kb.Dict()) {
		fmt.Println(row[0])
	}
	// Output:
	// <http://example.org/tom>
}

// ExampleExplain prints the proof tree of an entailed triple.
func ExampleExplain() {
	kb := webreason.NewKB()
	g := webreason.GraphOf(
		webreason.T(webreason.NewIRI("http://e/tom"), webreason.Type, webreason.NewIRI("http://e/Cat")),
		webreason.T(webreason.NewIRI("http://e/Cat"), webreason.SubClassOf, webreason.NewIRI("http://e/Mammal")),
	)
	if _, err := kb.LoadGraph(g); err != nil {
		panic(err)
	}
	proof, ok := webreason.Explain(kb, webreason.T(
		webreason.NewIRI("http://e/tom"), webreason.Type, webreason.NewIRI("http://e/Mammal")))
	if !ok {
		panic("not entailed")
	}
	fmt.Print(proof)
	// Output:
	// <http://e/tom> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Mammal>   [rdfs9]
	//   <http://e/Cat> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://e/Mammal>   [asserted]
	//   <http://e/tom> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Cat>   [asserted]
}

// ExampleComputeThresholds reproduces the Figure 3 arithmetic for one
// query: with a 100ms saturation cost and a 2ms-per-run advantage for the
// saturated evaluation, saturation pays off from the 50th execution on.
func ExampleComputeThresholds() {
	th := webreason.ComputeThresholds(
		webreason.MaintenanceCosts{Saturation: 100 * time.Millisecond},
		webreason.QueryCosts{
			EvalSaturated:      1 * time.Millisecond,
			AnswerReformulated: 3 * time.Millisecond,
		},
	)
	fmt.Printf("saturation threshold: %.0f runs\n", th.Saturation)
	// Output:
	// saturation threshold: 50 runs
}

// ExampleAdvise shows the strategy advisor on two workload mixes.
func ExampleAdvise() {
	cm := webreason.CostModel{
		Maintenance: webreason.MaintenanceCosts{
			Saturation:   100 * time.Millisecond,
			SchemaDelete: 5 * time.Millisecond,
		},
		EvalSaturated:      200 * time.Microsecond,
		AnswerReformulated: 2 * time.Millisecond,
	}
	mixes := []struct {
		name string
		w    webreason.Workload
	}{
		{"dashboard", webreason.Workload{Queries: 100000}},
		{"ontology-lab", webreason.Workload{Queries: 20, SchemaDeletes: 500}},
	}
	var lines []string
	for _, m := range mixes {
		rec := webreason.Advise(cm, m.w)
		lines = append(lines, fmt.Sprintf("%s -> %s", m.name, rec.Best))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	// Output:
	// dashboard -> saturation
	// ontology-lab -> reformulation
}
