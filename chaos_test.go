package webreason_test

// Chaos harness: full durable-server rounds under randomized, seeded fault
// schedules. Each seed builds a scripted faultfs (failing fsyncs, ENOSPC,
// torn writes, rename/remove failures, latency), runs concurrent workers
// issuing durable and plain mutations plus session reads, then either
// simulates a crash (byte-level copy of the live data directory) or closes
// cleanly, and recovers on a clean filesystem. Two invariants, per seed:
//
//  1. No acknowledged write is lost or resurrected: a triple whose last
//     acknowledged durable op was an insert must be present after recovery;
//     one whose last acknowledged op was a delete must be absent.
//  2. Every request completes promptly with a typed error or a result —
//     never a hang, never an untyped failure.
//
// Run the full sweep with `make test-chaos` (200 seeds under -race); plain
// `go test` runs a small default sweep. Reproduce one failing round with
// `go test -run TestChaos -chaos.seed=N`.

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"

	webreason "repro"
	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/persist"
)

var (
	chaosSeeds = flag.Int("chaos.seeds", 24, "number of seeded chaos rounds to run")
	chaosSeed  = flag.Int64("chaos.seed", -1, "run only this seed (reproduce a failure)")
)

// chaosTriple is the tracked triple for one pool index; workers own disjoint
// index ranges so each triple's acknowledged history is sequential.
func chaosTriple(idx int) webreason.Triple {
	return webreason.T(
		webreason.NewIRI(fmt.Sprintf("http://chaos.example.org/s%d", idx)),
		webreason.NewIRI("http://chaos.example.org/rel"),
		webreason.NewIRI(fmt.Sprintf("http://chaos.example.org/o%d", idx%7)))
}

func chaosAsk(idx int) *webreason.Query {
	return webreason.MustParseQuery(fmt.Sprintf(
		"ASK { <http://chaos.example.org/s%d> <http://chaos.example.org/rel> <http://chaos.example.org/o%d> }",
		idx, idx%7))
}

// chaosSchedule scripts a random-but-deterministic fault mix for one round.
// Every shape it can produce is one the recovery path claims to absorb:
// torn WAL tails and headers, partial snapshots behind a missing rename,
// sticky sync failures, a filling disk, and un-removable superseded files.
func chaosSchedule(rng *rand.Rand) *faultfs.Schedule {
	s := faultfs.NewSchedule()
	switch rng.Intn(3) {
	case 0: // WAL fsync starts failing and stays broken
		s.FailOpAlways(faultfs.OpSync, "wal-", 2+rng.Intn(20), syscall.EIO)
	case 1: // one transient WAL fsync failure (still sticky inside persist)
		s.FailOpOn(faultfs.OpSync, "wal-", 2+rng.Intn(20), syscall.EIO)
	}
	if rng.Intn(3) == 0 { // snapshot body write cannot be made durable
		s.FailOpOn(faultfs.OpSync, ".snap.tmp", 1+rng.Intn(3), syscall.EIO)
	}
	if rng.Intn(3) == 0 { // snapshot publish (tmp → final rename) fails
		s.FailOpOn(faultfs.OpRename, "snap-", 1+rng.Intn(2), syscall.EIO)
	}
	if rng.Intn(3) == 0 { // superseded files cannot be garbage-collected
		s.FailOpAlways(faultfs.OpRemove, "", 1, syscall.EACCES)
	}
	if rng.Intn(3) == 0 { // a WAL write tears partway through
		s.TornWriteOn("wal-", 1+rng.Intn(30), rng.Intn(12))
	}
	if rng.Intn(4) == 0 { // the disk fills
		s.ENOSPCAfter(int64(8<<10 + rng.Intn(56<<10)))
	}
	if rng.Intn(3) == 0 { // fsyncs crawl
		s.LatencyOn(faultfs.OpSync, "wal-", time.Duration(1+rng.Intn(3))*time.Millisecond)
	}
	return s
}

// record folds one durable-op outcome into the worker's per-triple model.
// Success pins the triple's expected post-recovery state. Any error makes the
// triple's state unknown (a deadline abandons the wait, not the write), so it
// is no longer asserted — but the error itself must still be typed.
func record(t *testing.T, known map[int]bool, idx int, present bool, err error) {
	t.Helper()
	if err == nil {
		known[idx] = present
		return
	}
	delete(known, idx)
	if !typedServerError(err) {
		t.Errorf("durable op on triple %d: untyped error %v", idx, err)
	}
}

func TestChaos(t *testing.T) {
	baseline := runtime.NumGoroutine()
	seeds := make([]int64, 0, *chaosSeeds)
	if *chaosSeed >= 0 {
		seeds = append(seeds, *chaosSeed)
	} else {
		for s := 0; s < *chaosSeeds; s++ {
			seeds = append(seeds, int64(s))
		}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed-%04d", seed), func(t *testing.T) { chaosRound(t, seed) })
	}
	// Every round closed its server and DBs; anything still running is a leak
	// (writer, syncer, checkpointer, or a stuck waiter). Allow a settle window
	// for goroutines mid-teardown.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutine leak: %d before, %d after all rounds\n%s",
			baseline, n, buf[:runtime.Stack(buf, true)])
	}
}

func chaosRound(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	fsys := faultfs.New(chaosSchedule(rng))

	syncs := []persist.SyncPolicy{persist.SyncAlways, persist.SyncGroup, persist.SyncNever}
	popts := persist.Options{
		Sync:                 syncs[rng.Intn(len(syncs))],
		GroupDelay:           time.Duration(rng.Intn(3)) * 100 * time.Microsecond,
		CheckpointRecords:    4 + rng.Intn(12),
		CheckpointBytes:      -1,
		CheckpointBackoff:    time.Millisecond,
		CheckpointBackoffMax: 8 * time.Millisecond,
		FS:                   fsys,
	}
	if rng.Intn(4) == 0 {
		popts.MaxWALBytes = 16 << 10
	}

	db, err := persist.Open(dir, popts)
	if err != nil {
		// A fault during Open (torn header write, early ENOSPC) is a crash
		// before the server ever served. Nothing was acknowledged, so the
		// only obligation is that a clean-disk recovery accepts the remains.
		chaosRecoverAndCheck(t, seed, dir, nil)
		return
	}
	srv := webreason.NewServer(core.NewSaturation(core.NewKB()), webreason.ServerOptions{
		DB:                db,
		FlushEvery:        1 + rng.Intn(4),
		FlushInterval:     2 * time.Millisecond,
		MaxPending:        4 + rng.Intn(12),
		NoFinalCheckpoint: rng.Intn(2) == 0,
	})

	const poolN = 20
	workers := 2 + rng.Intn(2)
	states := make([]map[int]bool, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		states[g] = map[int]bool{}
		wg.Add(1)
		go func(g int, wrng *rand.Rand) {
			defer wg.Done()
			sess := srv.Session()
			known := states[g]
			ops := 30 + wrng.Intn(40)
			for i := 0; i < ops; i++ {
				idx := g*1000 + wrng.Intn(poolN)
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				switch r := wrng.Intn(10); {
				case r < 4: // tracked durable insert
					record(t, known, idx, true, sess.InsertDurableContext(ctx, chaosTriple(idx)))
				case r < 7: // tracked durable delete
					record(t, known, idx, false, sess.DeleteDurableContext(ctx, chaosTriple(idx)))
				case r < 8: // untracked plain churn (never asserted after recovery)
					if err := srv.InsertContext(ctx, chaosTriple(g*1000+500+wrng.Intn(poolN))); err != nil && !typedServerError(err) {
						t.Errorf("plain insert: untyped error %v", err)
					}
				default: // session read: result or typed error, promptly
					if _, err := sess.AskContext(ctx, chaosAsk(idx)); err != nil && !typedServerError(err) {
						t.Errorf("read on triple %d: untyped error %v", idx, err)
					}
				}
				cancel()
			}
		}(g, rand.New(rand.NewSource(seed*31+int64(g)+1)))
	}
	wg.Wait()

	recoverDir := dir
	if rng.Intn(2) == 0 {
		// Crash: capture the directory's bytes while the server (and any
		// background checkpoint) is still live, exactly as a kill would.
		recoverDir = copyDataDir(t, dir)
		if err := srv.Close(); err != nil && !typedServerError(err) {
			t.Errorf("Close after crash copy: untyped error %v", err)
		}
	} else if err := srv.Close(); err != nil && !typedServerError(err) {
		t.Errorf("clean Close: untyped error %v", err)
	}
	db.Close() // release the LOCK; its durability verdict already reached the server

	chaosRecoverAndCheck(t, seed, recoverDir, states)
}

// chaosRecoverAndCheck reopens the surviving directory on a clean filesystem
// and asserts both invariants: recovery accepts every shape the faulted run
// could leave behind, and the recovered state agrees with every triple whose
// durable fate was acknowledged.
func chaosRecoverAndCheck(t *testing.T, seed int64, dir string, states []map[int]bool) {
	t.Helper()
	rdb, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatalf("seed %d: recovery refused the surviving directory: %v", seed, err)
	}
	defer rdb.Close()
	var strat webreason.Strategy
	if st := rdb.State(); st != nil {
		if _, strat, err = core.RestoreStrategy("saturation", st); err != nil {
			t.Fatalf("seed %d: restore: %v", seed, err)
		}
	} else {
		strat = core.NewSaturation(core.NewKB())
	}
	if _, err := rdb.ReplayTail(strat.Insert, strat.Delete); err != nil {
		t.Fatalf("seed %d: replay: %v", seed, err)
	}
	for g, known := range states {
		for idx, present := range known {
			ok, err := strat.Ask(chaosAsk(idx))
			if err != nil {
				t.Fatalf("seed %d: Ask(%d): %v", seed, idx, err)
			}
			if ok != present {
				t.Errorf("seed %d worker %d: triple %d recovered=%v but last acknowledged durable op said %v",
					seed, g, idx, ok, present)
			}
		}
	}
}
