// Quickstart: the paper's Section I example. The database holds only that
// "Tom is a cat" and the constraint "any cat is a mammal"; query answering
// must return Tom as a mammal even though that fact is never asserted.
// All three strategies are run side by side on a small pet ontology.
package main

import (
	"fmt"
	"log"
	"strings"

	webreason "repro"
)

const data = `
@prefix ex:   <http://example.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

# Ontology (semantic constraints).
ex:Cat     rdfs:subClassOf ex:Mammal .
ex:Dog     rdfs:subClassOf ex:Mammal .
ex:Mammal  rdfs:subClassOf ex:Animal .
ex:hasPet  rdfs:domain ex:Person .
ex:hasPet  rdfs:range  ex:Animal .
ex:adopted rdfs:subPropertyOf ex:hasPet .

# Facts.
ex:tom   a ex:Cat .
ex:rex   a ex:Dog .
ex:anne  ex:adopted ex:tom .
`

func main() {
	g, err := webreason.ParseTurtle(strings.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	kb := webreason.NewKB()
	if _, err := kb.LoadGraph(g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d triples (%d of them schema constraints)\n\n",
		g.Len(), len(g.SchemaTriples()))

	queries := map[string]string{
		"all mammals":              `PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Mammal }`,
		"all animals":              `PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Animal }`,
		"who has a pet, and which": `PREFIX ex: <http://example.org/> SELECT ?who ?pet WHERE { ?who ex:hasPet ?pet }`,
		"all persons":              `PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Person }`,
	}

	for _, name := range []string{"saturation", "reformulation", "backward"} {
		strat, err := webreason.NewStrategy(name, kb)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== strategy: %s ===\n", name)
		for label, text := range queries {
			q := webreason.MustParseQuery(text)
			res, err := strat.Answer(q)
			if err != nil {
				log.Fatal(err)
			}
			var vals []string
			for _, row := range res.Sort().Decode(kb.Dict()) {
				var cells []string
				for _, t := range row {
					cells = append(cells, shorten(t.String()))
				}
				vals = append(vals, strings.Join(cells, "+"))
			}
			fmt.Printf("  %-26s → %s\n", label, strings.Join(vals, ", "))
		}
		fmt.Println()
	}

	fmt.Println("Note: tom appears as a Mammal and an Animal, anne as a Person with pet")
	fmt.Println("tom — none of these facts is asserted; all follow from the constraints.")
}

func shorten(s string) string {
	s = strings.TrimPrefix(s, "<http://example.org/")
	return strings.TrimSuffix(s, ">")
}
