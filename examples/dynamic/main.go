// Dynamic endpoint: the paper's §II-B performance argument, live. An RDF
// endpoint receives interleaved updates and queries; we drive the same
// stream through the saturation strategy (which must maintain G∞ on every
// update) and the reformulation strategy (which leaves the graph alone and
// pays at query time), then report where the time went under each.
package main

import (
	"fmt"
	"log"
	"time"

	webreason "repro"
)

func main() {
	// Start from the built-in LUBM-style dataset (1 university, 6
	// departments ≈ 9k triples).
	g := webreason.LUBMGenerate(1, 6, 42)
	g.AddAll(webreason.LUBMOntology())
	kb := webreason.NewKB()
	if _, err := kb.LoadGraph(g); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("endpoint holds %d triples\n", kb.Len())
	query := webreason.MustParseQuery(`
PREFIX lubm: <http://lubm.example.org/onto#>
SELECT ?x WHERE { ?x a lubm:Person . ?x lubm:memberOf <http://lubm.example.org/data/univ0/dept0> }`)

	data := "http://lubm.example.org/data/"
	onto := "http://lubm.example.org/onto#"
	newStudent := func(i int) webreason.Triple {
		return webreason.T(
			webreason.NewIRI(fmt.Sprintf("%sincoming/student%d", data, i)),
			webreason.Type,
			webreason.NewIRI(onto+"GraduateStudent"))
	}
	newMembership := func(i int) webreason.Triple {
		return webreason.T(
			webreason.NewIRI(fmt.Sprintf("%sincoming/student%d", data, i)),
			webreason.NewIRI(onto+"memberOf"),
			webreason.NewIRI(data+"univ0/dept0"))
	}
	schemaChange := webreason.T(
		webreason.NewIRI(onto+"TeachingAssistant"),
		webreason.SubClassOf,
		webreason.NewIRI(onto+"Student"))

	for _, name := range []string{"saturation", "reformulation"} {
		strat, err := webreason.NewStrategy(name, kb)
		if err != nil {
			log.Fatal(err)
		}
		var updateTime, queryTime time.Duration
		answers := 0
		// The stream: 40 rounds of (2 inserts, 1 query), one schema change
		// midway, then 10 deletions.
		for i := 0; i < 40; i++ {
			start := time.Now()
			if err := strat.Insert(newStudent(i), newMembership(i)); err != nil {
				log.Fatal(err)
			}
			updateTime += time.Since(start)

			start = time.Now()
			res, err := strat.Answer(query)
			if err != nil {
				log.Fatal(err)
			}
			queryTime += time.Since(start)
			answers = len(res.Rows)

			if i == 20 {
				start = time.Now()
				if err := strat.Insert(schemaChange); err != nil {
					log.Fatal(err)
				}
				updateTime += time.Since(start)
			}
		}
		for i := 0; i < 10; i++ {
			start := time.Now()
			if err := strat.Delete(newStudent(i), newMembership(i)); err != nil {
				log.Fatal(err)
			}
			updateTime += time.Since(start)
		}
		fmt.Printf("\n%s:\n", name)
		fmt.Printf("  stored triples now:  %d\n", strat.Len())
		fmt.Printf("  update time total:   %v (90 instance ops + 1 schema op)\n", updateTime.Round(time.Microsecond))
		fmt.Printf("  query time total:    %v (40 queries, last returned %d members)\n",
			queryTime.Round(time.Microsecond), answers)
	}

	fmt.Println("\nReading the numbers: saturation answers queries faster but pays on every")
	fmt.Println("update (and stores more); reformulation's updates are near-free while each")
	fmt.Println("query costs more — the trade-off Figure 3 quantifies per query.")
}
