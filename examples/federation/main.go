// Federation: the paper's motivation for reformulation (§I). Two RDF
// endpoints are authored independently: a pet shelter publishes facts, a
// zoology site publishes an ontology. Integration brings facts and
// constraints together *after* load time — "computing prior to query
// answering all the consequences of facts from any endpoint and constraints
// from any (other) endpoint is not feasible". Reformulation answers
// correctly the instant the schemas are merged; saturation must first
// re-materialise.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	webreason "repro"
)

const shelterFacts = `
@prefix ex: <http://pets.example.org/> .
ex:tom    a ex:Cat .
ex:felix  a ex:Cat .
ex:rex    a ex:Dog .
ex:tweety a ex:Canary .
ex:anne   ex:adopted ex:tom .
ex:bob    ex:adopted ex:rex .
`

const zoologyOntology = `
@prefix ex:   <http://pets.example.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:Cat    rdfs:subClassOf ex:Mammal .
ex:Dog    rdfs:subClassOf ex:Mammal .
ex:Canary rdfs:subClassOf ex:Bird .
ex:Mammal rdfs:subClassOf ex:Animal .
ex:Bird   rdfs:subClassOf ex:Animal .
ex:adopted rdfs:domain ex:Adopter .
ex:adopted rdfs:range  ex:Animal .
`

const query = `PREFIX ex: <http://pets.example.org/> SELECT ?x WHERE { ?x a ex:Animal }`

func main() {
	facts, err := webreason.ParseTurtle(strings.NewReader(shelterFacts))
	if err != nil {
		log.Fatal(err)
	}
	ontology, err := webreason.ParseTurtle(strings.NewReader(zoologyOntology))
	if err != nil {
		log.Fatal(err)
	}

	// Endpoint comes online with facts only.
	kb := webreason.NewKB()
	if _, err := kb.LoadGraph(facts); err != nil {
		log.Fatal(err)
	}
	ref := webreason.NewReformulationStrategy(kb)
	sat := webreason.NewSaturationStrategy(kb)
	q := webreason.MustParseQuery(query)

	countAnswers := func(s webreason.Strategy) int {
		res, err := s.Answer(q)
		if err != nil {
			log.Fatal(err)
		}
		return len(res.Rows)
	}
	fmt.Println("before integration (no ontology yet):")
	fmt.Printf("  reformulation sees %d animals; saturation sees %d\n",
		countAnswers(ref), countAnswers(sat))

	// The zoology ontology arrives from the other endpoint.
	var ontoTriples []webreason.Triple
	ontology.ForEach(func(t webreason.Triple) bool {
		ontoTriples = append(ontoTriples, t)
		return true
	})

	start := time.Now()
	if err := ref.Insert(ontoTriples...); err != nil {
		log.Fatal(err)
	}
	refIntegration := time.Since(start)

	start = time.Now()
	if err := sat.Insert(ontoTriples...); err != nil {
		log.Fatal(err)
	}
	satIntegration := time.Since(start)

	fmt.Println("\nzoology ontology merged in:")
	fmt.Printf("  reformulation: integration cost %v (schema closure only), now sees %d animals\n",
		refIntegration.Round(time.Microsecond), countAnswers(ref))
	fmt.Printf("  saturation:    integration cost %v (re-derives instance facts), now sees %d animals\n",
		satIntegration.Round(time.Microsecond), countAnswers(sat))
	fmt.Printf("  stored triples: reformulation %d vs saturation %d\n", ref.Len(), sat.Len())

	// Show what was actually inferred.
	res, err := ref.Answer(q)
	if err != nil {
		log.Fatal(err)
	}
	var names []string
	for _, row := range res.Sort().Decode(kb.Dict()) {
		names = append(names, strings.TrimSuffix(strings.TrimPrefix(row[0].String(), "<http://pets.example.org/"), ">"))
	}
	fmt.Printf("\nanimals found across endpoints: %s\n", strings.Join(names, ", "))
	fmt.Println("(tom, felix, rex, tweety — every one implicit, via subclass and range constraints)")
}
