// Explain: derivation tracing. RDF systems that materialise entailed
// triples (OWLIM, Oracle — §II-C) keep "justifications" to maintain the
// closure and to answer *why* a fact holds. This example asks for proof
// trees over a small academic graph, including a fact that needs a chain of
// three different rules.
package main

import (
	"fmt"
	"log"
	"strings"

	webreason "repro"
)

const data = `
@prefix ex:   <http://uni.example.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

ex:teaches      rdfs:domain ex:Lecturer .
ex:Lecturer     rdfs:subClassOf ex:Staff .
ex:Staff        rdfs:subClassOf ex:Person .
ex:givesLab     rdfs:subPropertyOf ex:teaches .

ex:maria ex:givesLab ex:db101 .
`

func main() {
	g, err := webreason.ParseTurtle(strings.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	kb := webreason.NewKB()
	if _, err := kb.LoadGraph(g); err != nil {
		log.Fatal(err)
	}

	ex := func(n string) webreason.Term { return webreason.NewIRI("http://uni.example.org/" + n) }
	checks := []struct {
		label string
		t     webreason.Triple
	}{
		{"maria teaches db101 (one rdfs7 step)",
			webreason.T(ex("maria"), ex("teaches"), ex("db101"))},
		{"maria is a Lecturer (rdfs7 then rdfs2)",
			webreason.T(ex("maria"), webreason.Type, ex("Lecturer"))},
		{"maria is a Person (rdfs7, rdfs2, rdfs9 ×2)",
			webreason.T(ex("maria"), webreason.Type, ex("Person"))},
		{"maria is a Course (not entailed)",
			webreason.T(ex("maria"), webreason.Type, ex("Course"))},
	}
	for _, c := range checks {
		fmt.Printf("── why: %s\n", c.label)
		proof, ok := webreason.Explain(kb, c.t)
		if !ok {
			fmt.Println("   not entailed by the graph")
			continue
		}
		for _, line := range strings.Split(strings.TrimRight(proof, "\n"), "\n") {
			fmt.Println("   " + line)
		}
	}
}
