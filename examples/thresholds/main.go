// Thresholds: reproduce the Figure 3 analysis on your own workload. The
// example measures the cost quantities for three queries over a generated
// dataset, computes each query's five thresholds, and asks the advisor
// which strategy a given application mix should use.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	webreason "repro"
)

func main() {
	g := webreason.LUBMGenerate(1, 8, 7)
	g.AddAll(webreason.LUBMOntology())
	kb := webreason.NewKB()
	if _, err := kb.LoadGraph(g); err != nil {
		log.Fatal(err)
	}

	// --- measure the saturation-side costs -------------------------------
	startSat := time.Now()
	sat := webreason.NewSaturationStrategy(kb)
	satCost := time.Since(startSat)
	ref := webreason.NewReformulationStrategy(kb)

	onto := "http://lubm.example.org/onto#"
	data := "http://lubm.example.org/data/"
	instance := webreason.T(webreason.NewIRI(data+"new/s0"), webreason.Type, webreason.NewIRI(onto+"GraduateStudent"))
	// A loaded schema edge: Student ⊑ Person supports one derived type per
	// student, so deleting and re-adding it exercises real maintenance.
	schemaT := webreason.T(webreason.NewIRI(onto+"Student"), webreason.SubClassOf, webreason.NewIRI(onto+"Person"))

	maint := webreason.MaintenanceCosts{Saturation: satCost}
	maint.InstanceInsert = timeOp(func() { must(sat.Insert(instance)) })
	maint.InstanceDelete = timeOp(func() { must(sat.Delete(instance)) })
	maint.SchemaDelete = timeOp(func() { must(sat.Delete(schemaT)) })
	maint.SchemaInsert = timeOp(func() { must(sat.Insert(schemaT)) })

	// --- per-query costs and thresholds ----------------------------------
	queries := map[string]string{
		"members of dept0 (needs subclass+subproperty+domain/range)": `
PREFIX lubm: <http://lubm.example.org/onto#>
SELECT ?x WHERE { ?x a lubm:Person . ?x lubm:memberOf <http://lubm.example.org/data/univ0/dept0> }`,
		"all students (needs subclass)": `
PREFIX lubm: <http://lubm.example.org/onto#>
SELECT ?x WHERE { ?x a lubm:Student }`,
		"undergrads (no reasoning)": `
PREFIX lubm: <http://lubm.example.org/onto#>
SELECT ?x WHERE { ?x a lubm:UndergraduateStudent }`,
	}

	fmt.Printf("dataset: %d triples; saturation took %v\n\n", kb.Len(), satCost.Round(time.Millisecond))
	for label, text := range queries {
		q := webreason.MustParseQuery(text)
		qc := webreason.QueryCosts{
			EvalSaturated:      timeOp(func() { _, err := sat.Answer(q); must(err) }),
			AnswerReformulated: timeOp(func() { _, err := ref.Answer(q); must(err) }),
		}
		th := webreason.ComputeThresholds(maint, qc)
		fmt.Printf("query: %s\n", label)
		fmt.Printf("  eval on G∞: %v   answer by reformulation: %v\n",
			qc.EvalSaturated.Round(time.Microsecond), qc.AnswerReformulated.Round(time.Microsecond))
		for _, s := range th.Series() {
			fmt.Printf("  %-38s %s\n", s.Name+":", fmtThreshold(s.Value))
		}
		fmt.Println()
	}

	// --- advisor ----------------------------------------------------------
	// Use the measured maintenance costs with representative per-query
	// costs for this dataset.
	cm := webreason.CostModel{
		Maintenance:        maint,
		EvalSaturated:      200 * time.Microsecond,
		AnswerReformulated: 1200 * time.Microsecond,
	}
	for _, mix := range []struct {
		label string
		w     webreason.Workload
	}{
		{"dashboard (10k queries, static graph)", webreason.Workload{Queries: 10000}},
		{"ingestion pipeline (100 queries, 5k instance updates)",
			webreason.Workload{Queries: 100, InstanceInserts: 5000}},
		{"ontology lab (50 queries, 200 schema edits)",
			webreason.Workload{Queries: 50, SchemaInserts: 100, SchemaDeletes: 100}},
	} {
		rec := webreason.Advise(cm, mix.w)
		fmt.Printf("advisor: %-55s → %s\n", mix.label, rec.Best)
	}
}

func timeOp(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func fmtThreshold(v float64) string {
	if math.IsInf(v, 1) {
		return "∞ (saturation never amortises)"
	}
	return fmt.Sprintf("%.0f query run(s)", v)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
