// BenchmarkObsPreparedQuery proves the observability layer's overhead
// budget on the hottest read path: the instrumented server prepared query
// (metrics=on pays the latency histogram, pool hit counter and the slow
// log's lock-free threshold check on every execution) must stay within a
// few percent ns/op of the uninstrumented server and add zero allocs/op on
// top of the 3-allocs/op steady state. `make bench-obs` runs this and
// gates on the metrics=on allocs via cmd/benchjson -gate -max-allocs.
package webreason_test

import (
	"testing"
	"time"

	webreason "repro"
)

func BenchmarkObsPreparedQuery(b *testing.B) {
	f := getFixture(b)
	for _, mode := range []struct {
		name string
		obs  bool
	}{
		{"metrics=off", false},
		{"metrics=on", true},
	} {
		var opts webreason.ServerOptions
		if mode.obs {
			opts.Obs = webreason.NewMetricsRegistry()
			// A 1s threshold means every execution pays the Note check (the
			// real hot-path cost) but none is slow enough to build a trace,
			// matching a healthy production steady state.
			opts.SlowLog = webreason.NewSlowLog(256, time.Second)
		}
		srv := webreason.NewServer(f.sat, opts)
		for _, qn := range []string{"Q1", "Q5"} {
			q := f.qs[qn]
			b.Run(mode.name+"/"+qn, func(b *testing.B) {
				pq, err := srv.Prepare(q)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := pq.Answer(); err != nil { // warm scratch + pool
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := pq.Answer(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		if err := srv.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
