package webreason

import (
	"errors"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/persist"
)

// ServerOptions tunes a Server's mutation batching.
type ServerOptions struct {
	// FlushEvery is the number of queued mutation calls that forces an
	// immediate flush. Larger batches amortise the store's copy-on-write
	// detach and the strategy's snapshot swap across more updates (higher
	// write throughput, staler reads); smaller batches shorten the window in
	// which readers see pre-update state. Zero means DefaultFlushEvery.
	FlushEvery int
	// FlushInterval bounds how long a queued mutation may wait before it is
	// applied even when the batch is not full. Zero means
	// DefaultFlushInterval; negative disables the timer (flushes happen only
	// on a full batch or an explicit Flush/Close).
	FlushInterval time.Duration
	// MaxPending caps the queued-but-unapplied mutation calls; a full queue
	// blocks Insert/Delete until the background writer catches up, so a
	// sustained overload throttles producers instead of growing memory (and
	// final Flush/Close latency) without bound. Zero means
	// DefaultMaxPending; negative disables the cap.
	MaxPending int
	// DB enables durability: every applied mutation run is appended to the
	// write-ahead log before it reaches the strategy, checkpoints are taken
	// at the DB's configured thresholds (from O(1) copy-on-write state
	// snapshots, so writes never stall on serialisation), and Close writes a
	// final checkpoint. The caller opens the DB, replays its recovered tail
	// through the strategy, hands it here, and closes it after Close. The
	// strategy must implement core.DurableStrategy for checkpointing (all
	// built-in strategies do; a bare WAL still works without it).
	//
	// A WAL append failure is sticky: the failed batch and everything after
	// it are not applied, and Insert/Delete/Flush return the error — the
	// server refuses to diverge from its durable history.
	DB *persist.DB
	// NoFinalCheckpoint skips the checkpoint Close normally writes when the
	// WAL is non-empty (used by crash-simulation tests; production servers
	// want the faster next boot).
	NoFinalCheckpoint bool
}

// Default batching parameters: small enough that readers lag writers by
// worst-case a few milliseconds, large enough that a sustained write stream
// pays the per-batch snapshot cost a few hundred times less often than a
// per-call swap would.
const (
	DefaultFlushEvery    = 256
	DefaultFlushInterval = 2 * time.Millisecond
	DefaultMaxPending    = 4096
)

// ErrServerClosed is returned by mutations and flushes after Close.
var ErrServerClosed = errors.New("webreason: server closed")

// Server wraps a Strategy as a goroutine-safe serving layer: any number of
// goroutines may call Query, Ask, Prepare and prepared-query executions
// concurrently with each other and with Insert/Delete, which feed an
// asynchronous batched mutation queue applied by a single background writer.
//
// # Snapshot-isolation semantics
//
// Every read — a Query call, one execution of a prepared query — evaluates
// against an immutable snapshot of the strategy's state, taken by the writer
// after it applies a mutation batch and swapped in atomically. Readers
// therefore observe:
//
//   - a consistent closure of some prefix of the mutation sequence: all
//     entailments of exactly the base triples from batches applied so far,
//     never a partially-applied batch, never a store mid-maintenance (no
//     torn index state, no half-propagated inferences, no transiently
//     overdeleted triples from DRed's two phases);
//   - monotonic progress: successive reads observe the same or a later
//     prefix, never an earlier one (the snapshot pointer only moves
//     forward);
//   - bounded staleness, not read-your-writes: Insert/Delete enqueue and
//     return, so a read issued immediately afterwards may still see the
//     pre-update snapshot. Call Flush to make every previously enqueued
//     mutation visible to subsequent reads.
//
// What readers can never observe: effects of a mutation call interleaved
// below batch granularity (a batch is applied atomically with respect to
// reads), or state that mixes two batches partially.
//
// Mutations are validated synchronously — an ill-formed triple is rejected
// on the Insert/Delete call itself — and applied asynchronously in enqueue
// order, batched up to FlushEvery calls or FlushInterval of latency,
// whichever comes first. The queue is bounded by MaxPending: when producers
// sustainedly outrun the applier, Insert/Delete block until it catches up
// rather than growing the backlog (and the staleness window) without bound.
//
// # Durability
//
// With ServerOptions.DB set, the applier write-ahead logs every mutation run
// before handing it to the strategy, schedules checkpoints at the DB's
// thresholds from O(1) copy-on-write state captures, and Close ends the log
// with a final checkpoint. Because logging happens at batch application
// (not enqueue), the durable history is exactly the sequence of applied
// batches: recovery replays the WAL tail and reaches precisely the state a
// reader of the crashed server could last have observed, plus any batches
// that were logged but whose application the crash cut short.
type Server struct {
	strat core.Strategy
	opts  ServerOptions
	// durable is strat's checkpoint surface when opts.DB is set and the
	// strategy supports it.
	durable core.DurableStrategy

	mu       sync.Mutex
	cond     *sync.Cond // signalled when applied advances
	queue    []mutation
	enqueued uint64 // total mutation calls accepted
	applied  uint64 // total mutation calls applied by the writer
	durErr   error  // sticky WAL append failure; fails further mutations
	closed   bool

	kick chan struct{} // nudges the writer loop (capacity 1)
	done chan struct{} // closed to stop the writer loop
	// flushTimer bounds batch latency: armed when the queue goes non-empty,
	// stopped when it drains, so an idle server schedules no wakeups at all.
	flushTimer *time.Timer
	wg         sync.WaitGroup
}

// mutation is one queued Insert or Delete call.
type mutation struct {
	del bool
	ts  []Triple
}

// NewServer wraps the strategy. The strategy must not be mutated behind the
// server's back once serving starts; build it, hand it over, and use the
// server's methods from then on. Close must be called to release the
// background writer.
func NewServer(s Strategy, opts ServerOptions) *Server {
	if opts.FlushEvery <= 0 {
		opts.FlushEvery = DefaultFlushEvery
	}
	if opts.FlushInterval == 0 {
		opts.FlushInterval = DefaultFlushInterval
	}
	if opts.MaxPending == 0 {
		opts.MaxPending = DefaultMaxPending
	}
	srv := &Server{
		strat: s,
		opts:  opts,
		kick:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	if opts.DB != nil {
		if ds, ok := s.(core.DurableStrategy); ok {
			srv.durable = ds
		}
	}
	srv.cond = sync.NewCond(&srv.mu)
	srv.flushTimer = time.NewTimer(time.Hour)
	srv.flushTimer.Stop()
	srv.wg.Add(1)
	go srv.writer()
	return srv
}

// Strategy returns the wrapped strategy (for stats and advisory helpers;
// do not mutate it directly while the server is live).
func (s *Server) Strategy() Strategy { return s.strat }

// Query answers q against the current snapshot; safe for any number of
// concurrent callers.
func (s *Server) Query(q *Query) (*engine.Result, error) { return s.strat.Answer(q) }

// Ask reports whether q has any answer against the current snapshot.
func (s *Server) Ask(q *Query) (bool, error) { return s.strat.Ask(q) }

// Insert validates the triples and enqueues their assertion, returning
// before the batch is applied (see the staleness note in the type doc).
func (s *Server) Insert(ts ...Triple) error { return s.enqueue(false, ts) }

// Delete validates the triples and enqueues their retraction.
func (s *Server) Delete(ts ...Triple) error { return s.enqueue(true, ts) }

func (s *Server) enqueue(del bool, ts []Triple) error {
	for _, t := range ts {
		if err := t.WellFormed(); err != nil {
			return err
		}
	}
	m := mutation{del: del, ts: append([]Triple(nil), ts...)}
	s.mu.Lock()
	for s.opts.MaxPending > 0 && len(s.queue) >= s.opts.MaxPending && !s.closed {
		// Backpressure: wake the writer and wait for it to drain. nudge is a
		// non-blocking send, safe while holding mu.
		s.nudge()
		s.cond.Wait()
	}
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	if s.durErr != nil {
		err := s.durErr
		s.mu.Unlock()
		return err
	}
	s.queue = append(s.queue, m)
	s.enqueued++
	full := len(s.queue) >= s.opts.FlushEvery
	first := len(s.queue) == 1
	s.mu.Unlock()
	if full {
		s.nudge()
	} else if first && s.opts.FlushInterval > 0 {
		// Arm the latency bound only when the queue goes non-empty: an idle
		// server's writer then blocks on kick/done with no periodic wakeups.
		s.flushTimer.Reset(s.opts.FlushInterval)
	}
	return nil
}

// Flush blocks until every mutation enqueued before the call has been
// applied, making it visible to subsequent reads. With durability enabled it
// returns the sticky WAL error if logging failed (the affected batches were
// not applied).
func (s *Server) Flush() error {
	s.mu.Lock()
	target := s.enqueued
	s.mu.Unlock()
	s.nudge()
	s.mu.Lock()
	defer s.mu.Unlock()
	// The writer always drains the queue (on kicks, ticks and on its way
	// out), so applied reaches target even when Close races this call.
	for s.applied < target {
		s.cond.Wait()
	}
	return s.durErr
}

// Close flushes pending mutations, stops the background writer and marks
// the server closed. Further mutations return ErrServerClosed; reads keep
// working against the final state. With durability enabled, Close also ends
// the WAL with a final checkpoint (unless NoFinalCheckpoint), so the next
// boot loads one snapshot with an empty tail; the caller still owns the DB
// and must Close it afterwards. Close is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait() // the writer drains the queue on its way out
	s.mu.Lock()
	durErr := s.durErr
	s.mu.Unlock()
	if durErr != nil {
		return durErr
	}
	if s.durable != nil && !s.opts.NoFinalCheckpoint && s.opts.DB.Dirty() {
		return s.opts.DB.Checkpoint(s.durable.DurableState())
	}
	return nil
}

// nudge wakes the writer loop without blocking.
func (s *Server) nudge() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// writer is the single mutation applier: it owns all strategy mutation
// calls, so the strategy sees strictly serialized writes. It sleeps on the
// kick channel and the (enqueue-armed) flush timer — no periodic polling.
func (s *Server) writer() {
	defer s.wg.Done()
	defer s.flushTimer.Stop()
	for {
		select {
		case <-s.done:
			s.apply()
			return
		case <-s.kick:
		case <-s.flushTimer.C:
		}
		s.apply()
	}
}

// apply drains the queue and applies it as maximal same-kind runs, so a
// burst of Inserts becomes one strategy-level batch (one maintenance round,
// one snapshot swap) while preserving enqueue order across kinds.
func (s *Server) apply() {
	// Disarm the latency timer before grabbing the queue: any mutation
	// enqueued earlier is included in this batch, and one enqueued later
	// performs its 0→1 Reset strictly after this Stop, so no queued
	// mutation is ever left without an armed latency bound. (Stopping after
	// the grab could race such a Reset and swallow it.)
	s.flushTimer.Stop()
	s.mu.Lock()
	batch := s.queue
	s.queue = nil
	// Seed the round's error from the sticky flag: mutations that were
	// already queued when a previous round's WAL append failed must not be
	// logged or applied either — the documented guarantee is that nothing
	// after the failed batch reaches the strategy (their callers see the
	// error via Flush; applied still advances below so waiters unblock).
	durErr := s.durErr
	s.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	var run []Triple
	flushRun := func(del bool) {
		if len(run) == 0 || durErr != nil {
			return
		}
		// Write-ahead: the run is durably logged before the strategy sees
		// it. If logging fails the run is NOT applied (and neither is
		// anything after it) — replay-on-recovery and the live state must
		// describe the same history. Re-applying a logged-but-unapplied run
		// after a crash is harmless: strategy Insert/Delete absorb
		// duplicates.
		if s.opts.DB != nil {
			if err := s.opts.DB.Append(del, run); err != nil {
				durErr = err
				return
			}
		}
		// Strategy errors are impossible here: triples were validated on
		// enqueue and strategy mutation paths only fail on ill-formed input.
		if del {
			s.strat.Delete(run...)
		} else {
			s.strat.Insert(run...)
		}
		run = run[:0]
		// Checkpoint scheduling rides every run boundary, not just batch
		// ends: under sustained load one drained batch can hold thousands of
		// runs and take seconds to log and apply (especially with per-record
		// fsync), and the strategy state and WAL position agree exactly here
		// — the run was logged, then applied. The O(1) state capture plus
		// the DB's background serialisation keep this loop unstalled; the
		// DB's in-flight guard makes extra Due checks free.
		if s.durable != nil && s.opts.DB.CheckpointDue() {
			if err := s.opts.DB.CheckpointAsync(s.durable.DurableState()); err != nil {
				durErr = err
			}
		}
	}
	cur := batch[0].del
	for _, m := range batch {
		if m.del != cur {
			flushRun(cur)
			cur = m.del
		}
		run = append(run, m.ts...)
	}
	flushRun(cur)
	s.mu.Lock()
	s.applied += uint64(len(batch))
	if durErr != nil && s.durErr == nil {
		s.durErr = durErr
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Len returns the strategy's physical size as of the current snapshot.
func (s *Server) Len() int { return s.strat.Len() }

// Prepare compiles q for repeated concurrent execution against the server.
// The returned ServerPrepared is safe for any number of concurrent callers
// (unlike a bare PreparedQuery): it keeps a pool of per-goroutine prepared
// instances, each of which revalidates against the strategy's current
// snapshot on every execution.
func (s *Server) Prepare(q *Query) (*ServerPrepared, error) {
	// Prepare one instance eagerly so compile-time errors surface here.
	pq, err := s.strat.Prepare(q)
	if err != nil {
		return nil, err
	}
	sp := &ServerPrepared{s: s, q: q}
	sp.pool.Put(pq)
	return sp, nil
}

// ServerPrepared is a prepared query bound to a Server, safe for concurrent
// execution. Each execution evaluates against the server's current snapshot;
// see the Server type doc for exactly what that snapshot can contain.
type ServerPrepared struct {
	s    *Server
	q    *Query
	pool sync.Pool // of core.PreparedQuery
}

// Query returns the source query.
func (p *ServerPrepared) Query() *Query { return p.q }

// get hands out a pooled prepared instance, building one if the pool is
// momentarily empty (first use by a new level of concurrency).
func (p *ServerPrepared) get() (core.PreparedQuery, error) {
	if pq, ok := p.pool.Get().(core.PreparedQuery); ok {
		return pq, nil
	}
	return p.s.strat.Prepare(p.q)
}

// Answer executes the prepared query against the current snapshot.
func (p *ServerPrepared) Answer() (*engine.Result, error) {
	pq, err := p.get()
	if err != nil {
		return nil, err
	}
	res, err := pq.Answer()
	p.pool.Put(pq)
	return res, err
}

// Ask reports whether the prepared query has any answer.
func (p *ServerPrepared) Ask() (bool, error) {
	pq, err := p.get()
	if err != nil {
		return false, err
	}
	ok, err := pq.Ask()
	p.pool.Put(pq)
	return ok, err
}
