package webreason

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/replica"
)

// ServerOptions tunes a Server's mutation batching.
type ServerOptions struct {
	// FlushEvery is the number of queued mutation calls that forces an
	// immediate flush. Taking a snapshot is O(1) on the persistent-trie
	// index, so batching no longer amortises snapshot cost; larger batches
	// still amortise WAL record framing and maintenance-round fixed costs
	// (higher write throughput, staler reads), smaller batches shorten the
	// window in which readers see pre-update state. Zero means
	// DefaultFlushEvery.
	FlushEvery int
	// FlushInterval bounds how long a queued mutation may wait before it is
	// applied even when the batch is not full. Zero means
	// DefaultFlushInterval; negative disables the timer (flushes happen only
	// on a full batch or an explicit Flush/Close).
	FlushInterval time.Duration
	// MaxPending caps the queued-but-unapplied mutation calls; a full queue
	// blocks Insert/Delete until the background writer catches up, so a
	// sustained overload throttles producers instead of growing memory (and
	// final Flush/Close latency) without bound. Zero means
	// DefaultMaxPending; negative disables the cap.
	MaxPending int
	// DB enables durability: every applied mutation run is appended to the
	// write-ahead log before it reaches the strategy, checkpoints are taken
	// at the DB's configured thresholds (from O(1) copy-on-write state
	// snapshots, so writes never stall on serialisation), and Close writes a
	// final checkpoint. The caller opens the DB, replays its recovered tail
	// through the strategy, hands it here, and closes it after Close. The
	// strategy must implement core.DurableStrategy for checkpointing (all
	// built-in strategies do; a bare WAL still works without it).
	//
	// A WAL append failure is sticky: the batch that failed to log
	// synchronously and everything after it are not applied, and
	// Insert/Delete/Flush return the error — the server refuses to diverge
	// from its durable history. (Under persist.SyncGroup the fsync is
	// asynchronous: a run whose covering group fsync later fails has
	// already been applied and stays visible, but its durability acks carry
	// the error and every subsequent mutation is refused; see the type
	// doc's durability section.)
	DB *persist.DB
	// NoFinalCheckpoint skips the checkpoint Close normally writes when the
	// WAL is non-empty (used by crash-simulation tests; production servers
	// want the faster next boot).
	NoFinalCheckpoint bool
	// Obs, when set, enables runtime telemetry: the server registers its
	// metric families (query latency by strategy, enqueue/apply latency,
	// batch size, queue depth, watermark lag, rejection counters, session
	// RYW wait) against the registry and observes them on every hot path.
	// Instrumentation is lock-free and allocation-free (see internal/obs);
	// nil keeps the paths at their uninstrumented cost exactly.
	Obs *obs.Registry
	// SlowLog, when set alongside Obs, receives a structured QueryTrace for
	// every read at or above the log's threshold (strategy, plan-cache
	// hit/miss, rows, duration, query text). Ignored without Obs.
	SlowLog *obs.SlowLog
}

// Default batching parameters: small enough that readers lag writers by
// worst-case a few milliseconds, large enough that a sustained write stream
// pays the per-batch WAL and maintenance fixed costs a few hundred times
// less often than a per-call run would.
const (
	DefaultFlushEvery    = 256
	DefaultFlushInterval = 2 * time.Millisecond
	DefaultMaxPending    = 4096
)

// ErrServerClosed is returned by mutations and flushes after Close.
var ErrServerClosed = errors.New("webreason: server closed")

// ErrDegraded marks a server that has dropped to degraded read-only mode: a
// durability failure (failed WAL fsync, checkpoint rotation error, the WAL
// chain hitting its byte bound) made further writes unsafe to acknowledge.
// Reads keep serving the last applied snapshot; every write fails fast with
// a DegradedError wrapping this sentinel — match with
// errors.Is(err, ErrDegraded).
var ErrDegraded = errors.New("webreason: server degraded to read-only")

// DegradedError is the concrete error writes receive from a degraded
// server. It unwraps to both ErrDegraded and the underlying durability
// failure, so errors.Is can match either the mode or the root cause
// (e.g. syscall.ENOSPC, persist.ErrWALBound).
type DegradedError struct {
	// Cause is the durability failure that forced the degradation.
	Cause error
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("webreason: server degraded to read-only: %v", e.Cause)
}

func (e *DegradedError) Unwrap() []error { return []error{ErrDegraded, e.Cause} }

// wrapDegraded types a sticky durability error for callers; nil and
// already-wrapped errors pass through.
func wrapDegraded(err error) error {
	if err == nil {
		return nil
	}
	var de *DegradedError
	if errors.As(err, &de) {
		return err
	}
	return &DegradedError{Cause: err}
}

// ErrOverloaded marks a write the server refused to admit: the mutation
// queue stayed at MaxPending until the caller's context expired. It is the
// admission-control primitive — a front end maps it to 429/503 with the
// context's deadline as the retry hint. Match with
// errors.Is(err, ErrOverloaded); the concrete error is an OverloadedError.
var ErrOverloaded = errors.New("webreason: server overloaded")

// OverloadedError reports a write bounced by admission control.
type OverloadedError struct {
	// Pending is the queue depth observed when the caller gave up.
	Pending int
	// Cause is the context error that ended the wait
	// (context.DeadlineExceeded or context.Canceled).
	Cause error
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("webreason: server overloaded: %d mutations pending: %v", e.Pending, e.Cause)
}

func (e *OverloadedError) Unwrap() []error { return []error{ErrOverloaded, e.Cause} }

// Server wraps a Strategy as a goroutine-safe serving layer: any number of
// goroutines may call Query, Ask, Prepare and prepared-query executions
// concurrently with each other and with Insert/Delete, which feed an
// asynchronous batched mutation queue applied by a single background writer.
//
// # Snapshot-isolation semantics
//
// Every read — a Query call, one execution of a prepared query, a session
// read — pins an immutable snapshot of the strategy's state at read start
// and evaluates entirely against that exact version. Snapshots are O(1)
// root-pointer copies of the store's persistent-trie indexes (structural
// sharing; the writer path-copies only what it touches), so pinning one per
// read is free and any number of historical versions can stay live while
// the writer proceeds. The writer swaps the current version in atomically
// after applying each mutation batch. Readers therefore observe:
//
//   - a consistent closure of some prefix of the mutation sequence: all
//     entailments of exactly the base triples from batches applied so far,
//     never a partially-applied batch, never a store mid-maintenance (no
//     torn index state, no half-propagated inferences, no transiently
//     overdeleted triples from DRed's two phases);
//   - monotonic progress: successive reads observe the same or a later
//     prefix, never an earlier one (the snapshot pointer only moves
//     forward);
//   - bounded staleness by default: Insert/Delete enqueue and return, so a
//     read issued immediately afterwards may still see the pre-update
//     snapshot. Call Flush to make every previously enqueued mutation
//     visible to subsequent reads — or use a Session, whose reads always
//     observe that session's own writes (read-your-writes) without slowing
//     anonymous readers down.
//
// What readers can never observe: effects of a mutation call interleaved
// below batch granularity (a batch is applied atomically with respect to
// reads), or state that mixes two batches partially.
//
// # Sessions: read-your-writes
//
// Session (from Server.Session) scopes the stronger consistency level to
// the clients that want it: each session tracks the enqueue watermark of
// its own mutations, and its reads briefly wait — nudging the writer, so
// the wait is a queue drain, not a flush-interval sleep — until the applied
// prefix covers that watermark before evaluating against the then-current
// snapshot. A session read therefore observes every earlier write of the
// same session (plus whatever else has been applied), while reads on the
// Server itself keep the default bounded-staleness behaviour and never
// block on the queue.
//
// Mutations are validated synchronously — an ill-formed triple is rejected
// on the Insert/Delete call itself — and applied asynchronously in enqueue
// order, batched up to FlushEvery calls or FlushInterval of latency,
// whichever comes first. The queue is bounded by MaxPending: when producers
// sustainedly outrun the applier, Insert/Delete block until it catches up
// rather than growing the backlog (and the staleness window) without bound.
//
// # Durability
//
// With ServerOptions.DB set, the applier write-ahead logs every mutation run
// before handing it to the strategy, schedules checkpoints at the DB's
// thresholds from O(1) copy-on-write state captures, and Close ends the log
// with a final checkpoint. Because logging happens at batch application
// (not enqueue), the durable history is exactly the sequence of applied
// batches: recovery replays the WAL tail and reaches precisely the state a
// reader of the crashed server could last have observed, plus any batches
// that were logged but whose application the crash cut short.
//
// What a crash can take with it depends on the DB's sync policy:
//
//   - persist.SyncAlways — every logged run is fsynced before it is applied;
//     a power loss loses at most the run being logged at that instant.
//   - persist.SyncGroup — runs are logged immediately and fsynced in the
//     background, one fsync covering every run staged since the last
//     (group commit); power loss loses at most the staged suffix of runs
//     (bounded by the DB's GroupDelay), never a prefix-internal run. An
//     InsertDurable/DeleteDurable call (or the ack to a Session's durable
//     write) returns only after the covering fsync, so acknowledged writes
//     carry SyncAlways semantics at near-SyncNever applier throughput.
//   - persist.SyncNever — logging is page-cache only; a process crash loses
//     nothing (the OS still holds the pages), power loss may lose the last
//     moments of history.
//
// InsertDurable/DeleteDurable block until their mutation's WAL record is
// durable under the configured policy; without a DB they degrade to "applied
// to the in-memory state". Plain Insert/Delete never wait on an fsync under
// any policy.
//
// # Degraded read-only mode
//
// A durability failure the server cannot write around — a failed WAL append
// or fsync, a checkpoint rotation error, the WAL chain reaching
// DBOptions.MaxWALBytes — flips the server into degraded read-only mode
// rather than killing it or, worse, acknowledging writes it cannot make
// durable. In that mode:
//
//   - reads (Query, Ask, prepared executions) keep serving the last applied
//     snapshot indefinitely;
//   - every write fails fast with a DegradedError wrapping ErrDegraded and
//     the root cause — including writes already queued behind the failure,
//     which are refused, never applied;
//   - session reads stay honest: a Session whose own accepted write was
//     refused gets a DegradedError instead of an answer silently missing
//     that write, while sessions untouched by the divergence keep reading;
//   - Health reports the mode, its cause, and the durability counters an
//     operator needs (WAL chain size, checkpoint age and failures).
//
// Degradation is sticky for the server's lifetime: recovering requires a
// restart, whose WAL replay reconstructs exactly the durable history.
// Failed background checkpoints alone do NOT degrade the server — they
// retry with capped exponential backoff (the WAL chain meanwhile grows,
// bounded by MaxWALBytes, which degrades when hit).
//
// # Admission control
//
// The *Context mutation variants bound the MaxPending backpressure wait: a
// write that cannot be admitted before its context expires returns an
// OverloadedError (wrapping ErrOverloaded) carrying the observed queue
// depth — the hook a front end maps to 429/503. The *DurableContext
// variants additionally bound the durability wait; cancelling that wait
// abandons the acknowledgement, not the write.
type Server struct {
	strat core.Strategy
	opts  ServerOptions
	// durable is strat's checkpoint surface when opts.DB is set and the
	// strategy supports it.
	durable core.DurableStrategy
	// follower is the replication state machine behind a follower-mode
	// server (NewFollowerServer); nil on a plain primary. It keeps serving
	// after promotion (frozen) so epoch-tagged prepared entries stay valid.
	follower *replica.Follower
	// role is the replication role (Role), atomic so every read path can
	// route without touching mu. It changes exactly once: follower→promoted.
	role atomic.Int32
	// ownDB marks a DB the server opened itself (promotion) and must close.
	ownDB bool
	// om is the instrumentation surface (disabled zero value without
	// ServerOptions.Obs); by value so hot paths dereference no extra pointer.
	om serverMetrics

	mu       sync.Mutex
	cond     *sync.Cond // signalled when applied advances
	queue    []mutation
	enqueued uint64 // total mutation calls accepted
	// applied counts mutation calls applied by the writer. It only advances
	// under mu (followed by a cond broadcast), but is atomic so the session
	// fast path can check its watermark without touching the server mutex.
	applied atomic.Uint64
	durErr  error // sticky WAL append failure; fails further mutations
	closed  bool
	// divergedAt is the enqueue seq of the first accepted mutation the
	// degraded server refused to apply (0 = none). Session reads whose
	// watermark reaches it fail with DegradedError instead of silently
	// serving state that is missing the session's own accepted write; reads
	// below it still have their full read-your-writes guarantee and keep
	// serving. Written once by the writer, read lock-free by sessions.
	divergedAt atomic.Uint64

	kick chan struct{} // nudges the writer loop (capacity 1)
	done chan struct{} // closed to stop the writer loop
	// flushTimer bounds batch latency: armed when the queue goes non-empty,
	// stopped when it drains, so an idle server schedules no wakeups at all.
	flushTimer *time.Timer
	// ckptTimer schedules background checkpoint retries after a failure, so
	// an idle server still re-attempts (and eventually garbage-collects the
	// superseded chain) without waiting for the next mutation.
	ckptTimer *time.Timer
	wg        sync.WaitGroup
}

// mutation is one queued Insert or Delete call. ack, when set, fires once
// the call's WAL record is durable under the DB's sync policy (or, without
// a DB, once the call is applied); a sticky durability error is delivered
// through it instead.
type mutation struct {
	del bool
	ts  []Triple
	ack func(error)
}

// NewServer wraps the strategy. The strategy must not be mutated behind the
// server's back once serving starts; build it, hand it over, and use the
// server's methods from then on. Close must be called to release the
// background writer.
func NewServer(s Strategy, opts ServerOptions) *Server {
	if opts.FlushEvery <= 0 {
		opts.FlushEvery = DefaultFlushEvery
	}
	if opts.FlushInterval == 0 {
		opts.FlushInterval = DefaultFlushInterval
	}
	if opts.MaxPending == 0 {
		opts.MaxPending = DefaultMaxPending
	}
	srv := &Server{
		strat: s,
		opts:  opts,
		kick:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	if opts.DB != nil {
		if ds, ok := s.(core.DurableStrategy); ok {
			srv.durable = ds
		}
	}
	srv.om = newServerMetrics(opts.Obs, opts.SlowLog, s.Name())
	registerServerFuncs(opts.Obs, srv)
	srv.cond = sync.NewCond(&srv.mu)
	srv.flushTimer = time.NewTimer(time.Hour)
	srv.flushTimer.Stop()
	srv.ckptTimer = time.NewTimer(time.Hour)
	srv.ckptTimer.Stop()
	srv.wg.Add(1)
	go srv.writer()
	return srv
}

// Strategy returns the serving strategy (for stats and advisory helpers; do
// not mutate it directly while the server is live). On a follower it is the
// replica's current strategy and may be swapped by a re-bootstrap — re-fetch
// it per use rather than caching it.
func (s *Server) Strategy() Strategy { return s.reading() }

// Query answers q against the current snapshot; safe for any number of
// concurrent callers.
func (s *Server) Query(q *Query) (*engine.Result, error) {
	strat := s.reading()
	if !s.om.on {
		return strat.Answer(q)
	}
	t0 := monoNow()
	res, err := strat.Answer(q)
	rows := 0
	if res != nil {
		rows = len(res.Rows)
	}
	s.om.noteQuery(q, false, false, monoNow()-t0, rows, err)
	return res, err
}

// Ask reports whether q has any answer against the current snapshot.
func (s *Server) Ask(q *Query) (bool, error) {
	strat := s.reading()
	if !s.om.on {
		return strat.Ask(q)
	}
	t0 := monoNow()
	ok, err := strat.Ask(q)
	s.om.noteQuery(q, false, false, monoNow()-t0, 0, err)
	return ok, err
}

// Insert validates the triples and enqueues their assertion, returning
// before the batch is applied (see the staleness note in the type doc).
func (s *Server) Insert(ts ...Triple) error {
	_, err := s.enqueue(context.Background(), false, ts, nil)
	return err
}

// Delete validates the triples and enqueues their retraction.
func (s *Server) Delete(ts ...Triple) error {
	_, err := s.enqueue(context.Background(), true, ts, nil)
	return err
}

// InsertContext is Insert with deadline-aware admission control: if the
// mutation queue stays at MaxPending until ctx expires, it returns an
// OverloadedError instead of blocking indefinitely.
func (s *Server) InsertContext(ctx context.Context, ts ...Triple) error {
	_, err := s.enqueue(ctx, false, ts, nil)
	return err
}

// DeleteContext is Delete with deadline-aware admission control.
func (s *Server) DeleteContext(ctx context.Context, ts ...Triple) error {
	_, err := s.enqueue(ctx, true, ts, nil)
	return err
}

// InsertDurable enqueues the assertion and blocks until its WAL record is
// durable under the DB's sync policy — under persist.SyncGroup that is the
// covering group fsync, so concurrent durable writers share one fsync per
// burst instead of paying one each. Without a DB it blocks until the
// mutation is applied. A nil return means the write is logged and fsynced:
// it survives power loss (SyncAlways/SyncGroup) or process crash
// (SyncNever).
func (s *Server) InsertDurable(ts ...Triple) error { return s.durably(context.Background(), false, ts) }

// DeleteDurable is InsertDurable for retractions.
func (s *Server) DeleteDurable(ts ...Triple) error { return s.durably(context.Background(), true, ts) }

// InsertDurableContext is InsertDurable bounded by ctx: admission control on
// the enqueue wait (OverloadedError once ctx expires against a full queue)
// and a bounded durability wait. Cancellation during the durability wait
// abandons the WAIT, not the write — the mutation is already accepted into
// the applied sequence and its WAL record may still become durable; the
// context error tells the caller "durability unconfirmed", not "undone".
func (s *Server) InsertDurableContext(ctx context.Context, ts ...Triple) error {
	return s.durably(ctx, false, ts)
}

// DeleteDurableContext is InsertDurableContext for retractions.
func (s *Server) DeleteDurableContext(ctx context.Context, ts ...Triple) error {
	return s.durably(ctx, true, ts)
}

func (s *Server) durably(ctx context.Context, del bool, ts []Triple) error {
	ch := make(chan error, 1)
	//lint:ignore ctxblock the channel is buffered(1) and the ack fires at most once, so the send never blocks
	if _, err := s.enqueue(ctx, del, ts, func(err error) { ch <- err }); err != nil {
		return err
	}
	// The caller is explicitly waiting: kick the writer so the ack is a
	// queue drain away, not a FlushInterval sleep away.
	s.nudge()
	if ctx.Done() == nil {
		//lint:ignore ctxblock ctx.Done() is nil so the caller chose an unbounded wait; the ack always fires because the writer drains the queue on close and degrade
		return <-ch
	}
	select {
	case err := <-ch:
		return err
	case <-ctx.Done():
		// Abandons the durability wait only; see InsertDurableContext.
		return ctx.Err()
	}
}

// enqueue validates and queues one mutation call, returning its position in
// the accepted sequence (1-based; the watermark Sessions pin reads to). A
// full queue blocks until the writer drains it, the server closes or
// degrades, or ctx expires — the latter returns an OverloadedError carrying
// the observed depth (admission control).
func (s *Server) enqueue(ctx context.Context, del bool, ts []Triple, ack func(error)) (uint64, error) {
	for _, t := range ts {
		if err := t.WellFormed(); err != nil {
			return 0, err
		}
	}
	if s.role.Load() == int32(RoleFollower) {
		// A follower serves reads only; writes belong on the primary until
		// this node is promoted.
		return 0, &NotPrimaryError{Role: RoleFollower}
	}
	m := mutation{del: del, ts: append([]Triple(nil), ts...), ack: ack}
	s.mu.Lock()
	if s.opts.MaxPending > 0 && len(s.queue) >= s.opts.MaxPending && !s.closed && s.durErr == nil {
		// Backpressure wait. A degraded or closed server exits the loop
		// instead of waiting: the queue will never drain into the strategy
		// again, and the caller gets the fail-fast typed error below. Context
		// expiry must also wake the wait, so the expiry callback broadcasts
		// under mu (guaranteeing it cannot fire between the loop's check and
		// the Wait going to sleep).
		if ctx.Done() != nil {
			stop := context.AfterFunc(ctx, func() {
				s.mu.Lock()
				s.cond.Broadcast()
				s.mu.Unlock()
			})
			defer stop()
		}
		var waitStart time.Time
		if s.om.on {
			waitStart = time.Now()
		}
		for s.opts.MaxPending > 0 && len(s.queue) >= s.opts.MaxPending && !s.closed && s.durErr == nil {
			if err := ctx.Err(); err != nil {
				depth := len(s.queue)
				s.mu.Unlock()
				s.om.rejectedOverloaded.Inc()
				s.om.enqueueWait.ObserveSince(waitStart)
				return 0, &OverloadedError{Pending: depth, Cause: err}
			}
			// Wake the writer and wait for it to drain. nudge is a
			// non-blocking send, safe while holding mu.
			s.nudge()
			s.cond.Wait()
		}
		if s.om.on {
			s.om.enqueueWait.Observe(time.Since(waitStart).Nanoseconds())
		}
	}
	if s.closed {
		s.mu.Unlock()
		return 0, ErrServerClosed
	}
	if s.durErr != nil {
		err := s.durErr
		s.mu.Unlock()
		s.om.rejectedDegraded.Inc()
		return 0, wrapDegraded(err)
	}
	s.queue = append(s.queue, m)
	s.enqueued++
	seq := s.enqueued
	full := len(s.queue) >= s.opts.FlushEvery
	first := len(s.queue) == 1
	s.mu.Unlock()
	if full {
		s.nudge()
	} else if first && s.opts.FlushInterval > 0 {
		// Arm the latency bound only when the queue goes non-empty: an idle
		// server's writer then blocks on kick/done with no periodic wakeups.
		s.flushTimer.Reset(s.opts.FlushInterval)
	}
	return seq, nil
}

// waitApplied blocks until the applier has applied (or, after degradation,
// refused) the first seq accepted mutation calls. The common case — the
// watermark is already applied — is a single atomic load (observing
// applied >= seq happens-after the covering snapshot swap, which the writer
// performs before advancing the counter), so session reads do not contend on
// the server mutex. On the slow path the writer is kicked first, so the wait
// is bounded by the current queue's application, not by the flush timer.
//
// It returns a DegradedError when the watermark covers a mutation the
// degraded server refused to apply: the write will never become visible, so
// waiting longer cannot help and answering the read would silently violate
// read-your-writes. Watermarks entirely below the divergence point (and the
// zero watermark of a session that never wrote) keep reading normally — the
// degraded server serves its last applied snapshot. With ctx cancellable,
// expiry ends the wait with the context error.
func (s *Server) waitApplied(ctx context.Context, seq uint64) error {
	if err := s.checkDiverged(seq); err != nil {
		return err
	}
	if s.applied.Load() >= seq {
		return nil
	}
	// Slow path: the session actually waits. The defer's closure allocation
	// is acceptable here — the caller is about to block on the writer.
	if s.om.on {
		t0 := time.Now()
		defer func() { s.om.sessionWait.ObserveSince(t0) }()
	}
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		})
		defer stop()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// The writer drains the queue on kicks and on its way out (advancing
	// applied past refused mutations too), so this wait terminates even when
	// Close or a durability failure races it.
	for s.applied.Load() < seq {
		if d := s.divergedAt.Load(); d != 0 && seq >= d {
			return wrapDegraded(s.durErr)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		s.nudge()
		s.cond.Wait()
	}
	if d := s.divergedAt.Load(); d != 0 && seq >= d {
		return wrapDegraded(s.durErr)
	}
	return nil
}

// checkDiverged returns the typed degraded error when watermark seq covers a
// mutation the degraded server refused to apply. Lock-free in the healthy
// case: divergedAt is only ever written once. Must be called without mu.
func (s *Server) checkDiverged(seq uint64) error {
	if d := s.divergedAt.Load(); d != 0 && seq >= d {
		s.mu.Lock()
		err := s.durErr
		s.mu.Unlock()
		return wrapDegraded(err)
	}
	return nil
}

// Flush blocks until every mutation enqueued before the call has been
// applied, making it visible to subsequent reads. With durability enabled it
// returns the sticky WAL error if logging failed (the affected batches were
// not applied).
func (s *Server) Flush() error {
	s.mu.Lock()
	target := s.enqueued
	s.mu.Unlock()
	s.nudge()
	s.mu.Lock()
	defer s.mu.Unlock()
	// The writer always drains the queue (on kicks, ticks and on its way
	// out), so applied reaches target even when Close races this call.
	for s.applied.Load() < target {
		//lint:ignore ctxblock Flush's API contract is an unbounded wait; the writer drains the queue on kicks, ticks and exit, so applied always reaches target
		s.cond.Wait()
	}
	return wrapDegraded(s.durErr)
}

// Health is a point-in-time report of the serving layer's condition, for
// operator dashboards and load balancers. All fields are observed without
// stopping the writer; the durability fields are zero without a DB.
type Health struct {
	// Degraded reports degraded read-only mode: reads serve the last applied
	// snapshot, writes fail fast with a DegradedError whose cause is
	// DegradedCause.
	Degraded bool
	// DegradedCause is the durability failure behind the degradation; nil
	// when healthy.
	DegradedCause error
	// Closed reports a server after Close (reads still work).
	Closed bool

	// Role is the server's replication role. A plain NewServer is
	// RolePrimary; see NewFollowerServer and Server.Promote.
	Role Role
	// Position is the durable chain position of the last logged write (zero
	// without a DB) — the watermark a primary hands to sessions so follower
	// reads can wait for it.
	Position Position
	// ReplicaApplied is the position a follower has applied through (its
	// last-applied watermark); ReplicaLagBytes / ReplicaLagRecords measure
	// how far the source was ahead at the last poll (records are estimated
	// from the follower's applied history; -1 with no history yet), and
	// ReplicaEpoch counts serving-state rebootstraps. All zero outside
	// follower mode.
	ReplicaApplied    Position
	ReplicaLagBytes   int64
	ReplicaLagRecords int64
	ReplicaEpoch      uint64

	// Enqueued counts accepted mutation calls; Applied counts those the
	// writer has applied (or, after degradation, refused). Lag — the
	// applied-watermark lag — is Enqueued-Applied: how far reads may trail
	// writes, the queue depth plus the batch in flight.
	Enqueued, Applied, Lag uint64
	// Pending is the current queued-but-unapplied depth the MaxPending
	// admission bound applies to.
	Pending int

	// WALGeneration is the active WAL generation.
	WALGeneration uint64
	// WALBytes is the active WAL's size — the bytes written since the last
	// completed checkpoint began its generation.
	WALBytes int64
	// WALChainBytes is the byte total across every live WAL generation: the
	// replay debt the next recovery pays, bounded by DBOptions.MaxWALBytes.
	// It exceeds WALBytes exactly when checkpoints are failing.
	WALChainBytes int64
	// WALRecords counts records in the active generation.
	WALRecords int
	// LastCheckpoint is when the last durable checkpoint completed (zero if
	// none this process); CheckpointAge is time since then (0 when zero).
	LastCheckpoint time.Time
	CheckpointAge  time.Duration
	// CheckpointFailures counts failed checkpoint attempts;
	// CheckpointRetryPending reports a capped-backoff retry is scheduled.
	CheckpointFailures     int64
	CheckpointRetryPending bool
	// GCRemoveFailures counts superseded-generation files whose removal
	// failed (each is re-attempted on the next GC pass).
	GCRemoveFailures int64
}

// Health returns the server's current health report. Safe for any
// goroutine, cheap enough to poll.
func (s *Server) Health() Health {
	var h Health
	h.Role = s.Role()
	s.mu.Lock()
	h.Degraded = s.durErr != nil
	h.DegradedCause = s.durErr
	h.Closed = s.closed
	h.Enqueued = s.enqueued
	h.Pending = len(s.queue)
	// applied only advances under mu, so reading it here keeps
	// Lag = Enqueued-Applied from racing into uint64 wraparound.
	h.Applied = s.applied.Load()
	// opts.DB is written by Promote (under mu); snapshot it here.
	db := s.opts.DB
	s.mu.Unlock()
	h.Lag = h.Enqueued - h.Applied
	if h.Role == RoleFollower {
		st := s.follower.Status()
		h.ReplicaApplied = st.Applied
		h.ReplicaLagBytes = st.LagBytes
		h.ReplicaLagRecords = st.LagRecords
		h.ReplicaEpoch = st.Epoch
		if st.Err != nil {
			// A terminally-failed replication loop (fenced source) is the
			// follower's degraded read-only mode: it serves its last applied
			// state and can never advance.
			h.Degraded = true
			h.DegradedCause = st.Err
		}
	}
	if db != nil {
		h.Position = db.TipPos()
		st := db.Stats()
		h.WALGeneration = st.Generation
		h.WALBytes = st.WALSize
		h.WALChainBytes = st.ChainBytes
		h.WALRecords = st.WALRecords
		h.LastCheckpoint = st.LastCheckpoint
		if !st.LastCheckpoint.IsZero() {
			h.CheckpointAge = time.Since(st.LastCheckpoint)
		}
		h.CheckpointFailures = st.CheckpointFailures
		h.CheckpointRetryPending = st.CheckpointRetryPending
		h.GCRemoveFailures = st.GCRemoveFailures
	}
	return h
}

// Close flushes pending mutations, stops the background writer and marks
// the server closed. Further mutations return ErrServerClosed; reads keep
// working against the final state. With durability enabled, Close also ends
// the WAL with a final checkpoint (unless NoFinalCheckpoint), so the next
// boot loads one snapshot with an empty tail; the caller still owns the DB
// and must Close it afterwards (except the DB a promotion opened, which the
// server closes itself). On a follower, Close stops replication and closes
// the local mirror. Close is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		//lint:ignore ctxblock shutdown wait: done is already closed, so the writer exits after one bounded queue drain
		s.wg.Wait()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	if s.Role() == RoleFollower {
		// Never-promoted follower: no writer goroutine, no queue; stop
		// replication and close the local mirror. Reads keep serving the last
		// applied state; pending waits get typed errors via the follower.
		return s.follower.Stop()
	}
	//lint:ignore ctxblock shutdown wait: done just closed, so the writer exits after one bounded queue drain
	s.wg.Wait() // the writer drains the queue on its way out
	s.mu.Lock()
	durErr := s.durErr
	s.mu.Unlock()
	err := wrapDegraded(durErr)
	if err == nil && s.durable != nil && !s.opts.NoFinalCheckpoint && s.opts.DB.Dirty() {
		// Wrapped like every other durability failure: callers see one typed
		// taxonomy (the WAL already holds the un-checkpointed history, so a
		// failed final snapshot degrades the shutdown, it does not lose data).
		err = wrapDegraded(s.opts.DB.Checkpoint(s.durable.DurableState()))
	}
	if s.ownDB {
		// A promoted server opened its DB itself (Promote); a NewServer
		// caller still owns theirs.
		if cerr := s.opts.DB.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// nudge wakes the writer loop without blocking.
func (s *Server) nudge() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// fireAcks delivers one durability outcome to every covered mutation call.
func fireAcks(acks []func(error), err error) {
	for _, a := range acks {
		a(err)
	}
}

// asyncDurErr records a durability failure delivered asynchronously (a
// failed group fsync) as the sticky error, so mutations after the failed
// record are refused instead of diverging from the durable history.
func (s *Server) asyncDurErr(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	if s.durErr == nil {
		s.durErr = err
	}
	s.mu.Unlock()
}

// Session scopes read-your-writes consistency to one client: its reads
// always observe its own earlier writes, while Server-level reads keep the
// default bounded-staleness behaviour. A Session is cheap (two words) and
// safe for concurrent use, though its consistency guarantee is per call:
// a read observes every write whose Session method returned before the
// read started.
//
// Writes through a session are the server's — same queue, same batching,
// same durability — plus watermark tracking: each call records its enqueue
// position, and reads wait (nudging the writer, so typically microseconds)
// until the applied prefix covers the session's watermark before evaluating
// against the then-current snapshot. InsertDurable/DeleteDurable block
// until the write is durable under the DB's sync policy, which under
// persist.SyncGroup means sharing one group fsync with every concurrent
// durable writer.
type Session struct {
	s    *Server
	mark atomic.Uint64 // highest enqueue seq of this session's mutations
	// pos is the highest fleet position this session must observe — carried
	// from a primary (Position) to a follower (ObservePosition), where reads
	// wait until the applied prefix covers it. Nil until observed.
	pos atomic.Pointer[Position]
}

// Session returns a new read-your-writes session on the server.
func (s *Server) Session() *Session { return &Session{s: s} }

// note advances the session watermark to seq (monotonic).
func (ss *Session) note(seq uint64) {
	for {
		cur := ss.mark.Load()
		if seq <= cur || ss.mark.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// Insert enqueues the assertion like Server.Insert and advances the session
// watermark, making the write visible to this session's subsequent reads.
func (ss *Session) Insert(ts ...Triple) error { return ss.InsertContext(context.Background(), ts...) }

// Delete enqueues the retraction and advances the session watermark.
func (ss *Session) Delete(ts ...Triple) error { return ss.DeleteContext(context.Background(), ts...) }

// InsertContext is Insert with deadline-aware admission control (see
// Server.InsertContext).
func (ss *Session) InsertContext(ctx context.Context, ts ...Triple) error {
	seq, err := ss.s.enqueue(ctx, false, ts, nil)
	if err == nil {
		ss.note(seq)
	}
	return err
}

// DeleteContext is Delete with deadline-aware admission control.
func (ss *Session) DeleteContext(ctx context.Context, ts ...Triple) error {
	seq, err := ss.s.enqueue(ctx, true, ts, nil)
	if err == nil {
		ss.note(seq)
	}
	return err
}

// InsertDurable is Server.InsertDurable with session watermark tracking: it
// returns once the write is durably logged (and the session's later reads
// will observe it).
func (ss *Session) InsertDurable(ts ...Triple) error {
	return ss.durably(context.Background(), false, ts)
}

// DeleteDurable is InsertDurable for retractions.
func (ss *Session) DeleteDurable(ts ...Triple) error {
	return ss.durably(context.Background(), true, ts)
}

// InsertDurableContext is InsertDurable bounded by ctx; cancellation during
// the durability wait abandons the wait, not the write (see
// Server.InsertDurableContext).
func (ss *Session) InsertDurableContext(ctx context.Context, ts ...Triple) error {
	return ss.durably(ctx, false, ts)
}

// DeleteDurableContext is InsertDurableContext for retractions.
func (ss *Session) DeleteDurableContext(ctx context.Context, ts ...Triple) error {
	return ss.durably(ctx, true, ts)
}

func (ss *Session) durably(ctx context.Context, del bool, ts []Triple) error {
	ch := make(chan error, 1)
	//lint:ignore ctxblock the channel is buffered(1) and the ack fires at most once, so the send never blocks
	seq, err := ss.s.enqueue(ctx, del, ts, func(err error) { ch <- err })
	if err != nil {
		return err
	}
	// The watermark advances before the durability wait: even if the ack
	// reports a failure the mutation was accepted into the applied sequence
	// (applied always advances past it, and a refused mutation turns the
	// session's later reads into typed DegradedErrors), so reads stay
	// well-defined.
	ss.note(seq)
	ss.s.nudge()
	if ctx.Done() == nil {
		//lint:ignore ctxblock ctx.Done() is nil so the caller chose an unbounded wait; the ack always fires because the writer drains the queue on close and degrade
		return <-ch
	}
	select {
	case err := <-ch:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Query answers q against a snapshot whose applied prefix covers every
// earlier write of this session (read-your-writes); see the Session doc.
// After a durability failure it returns a DegradedError when — and only
// when — the session's watermark covers a write the degraded server refused
// to apply: answering then would silently drop the session's own accepted
// write, while sessions below the divergence keep reading normally.
func (ss *Session) Query(q *Query) (*engine.Result, error) {
	return ss.QueryContext(context.Background(), q)
}

// QueryContext is Query with the read-your-writes wait bounded by ctx.
func (ss *Session) QueryContext(ctx context.Context, q *Query) (*engine.Result, error) {
	if err := ss.s.waitSession(ctx, ss); err != nil {
		return nil, err
	}
	return ss.s.reading().Answer(q)
}

// Ask reports whether q has any answer, observing the session's own writes.
func (ss *Session) Ask(q *Query) (bool, error) { return ss.AskContext(context.Background(), q) }

// AskContext is Ask with the read-your-writes wait bounded by ctx.
func (ss *Session) AskContext(ctx context.Context, q *Query) (bool, error) {
	if err := ss.s.waitSession(ctx, ss); err != nil {
		return false, err
	}
	return ss.s.reading().Ask(q)
}

// writer is the single mutation applier: it owns all strategy mutation
// calls, so the strategy sees strictly serialized writes. It sleeps on the
// kick channel, the (enqueue-armed) flush timer and the checkpoint-retry
// timer — no periodic polling while healthy and idle.
func (s *Server) writer() {
	defer s.wg.Done()
	defer s.flushTimer.Stop()
	defer s.ckptTimer.Stop()
	for {
		select {
		case <-s.done:
			s.apply()
			return
		case <-s.kick:
		case <-s.flushTimer.C:
		case <-s.ckptTimer.C:
		}
		s.apply()
		s.maybeCheckpoint()
	}
}

// maybeCheckpoint runs the checkpoint policy outside batch application: it
// fires a due checkpoint (including a backoff retry that became due while
// the server sat idle) and keeps the retry timer armed while a failure is
// pending, so retries don't depend on new mutations arriving. A rotation
// failure here degrades the server exactly like one at a run boundary.
func (s *Server) maybeCheckpoint() {
	if s.durable == nil {
		return
	}
	if s.opts.DB.CheckpointDue() {
		if err := s.opts.DB.CheckpointAsync(s.durable.DurableState()); err != nil {
			s.asyncDurErr(err)
		}
	}
	if d, ok := s.opts.DB.CheckpointRetryAfter(); ok {
		// Floor the re-arm so a just-due retry blocked by an in-flight
		// attempt re-checks soon without spinning.
		s.ckptTimer.Reset(max(d, time.Millisecond))
	}
}

// apply drains the queue and applies it as maximal same-kind runs, so a
// burst of Inserts becomes one strategy-level batch (one maintenance round,
// one snapshot swap) while preserving enqueue order across kinds.
func (s *Server) apply() {
	// Disarm the latency timer before grabbing the queue: any mutation
	// enqueued earlier is included in this batch, and one enqueued later
	// performs its 0→1 Reset strictly after this Stop, so no queued
	// mutation is ever left without an armed latency bound. (Stopping after
	// the grab could race such a Reset and swallow it.)
	s.flushTimer.Stop()
	s.mu.Lock()
	batch := s.queue
	s.queue = nil
	// Seed the round's error from the sticky flag: mutations that were
	// already queued when a previous round's WAL append failed must not be
	// logged or applied either — the documented guarantee is that nothing
	// after the failed batch reaches the strategy (their callers see the
	// error via Flush; applied still advances below so waiters unblock).
	durErr := s.durErr
	s.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	var applyStart time.Time
	if s.om.on {
		applyStart = time.Now()
	}
	// firstRefused is the batch index of the first mutation call this round
	// refused to apply (durability failure), -1 if none: it pins divergedAt,
	// the seq where session read-your-writes guarantees stop being served.
	firstRefused := -1
	refused := func(runStart int) {
		if firstRefused < 0 || runStart < firstRefused {
			firstRefused = runStart
		}
	}
	var run []Triple
	var runAcks []func(error)
	flushRun := func(del bool, runStart int) {
		acks := runAcks
		runAcks = nil // acks escape into the durability callback; fresh slice per run
		if len(run) == 0 {
			// A run of zero-triple mutation calls: nothing to log or apply,
			// so durability holds vacuously — but the acks must still fire,
			// or an empty InsertDurable would wait forever.
			fireAcks(acks, nil)
			return
		}
		if durErr == nil {
			// Pick up an asynchronous group-fsync failure recorded since the
			// previous run: nothing may be logged or applied after it.
			s.mu.Lock()
			durErr = s.durErr
			s.mu.Unlock()
		}
		if durErr != nil {
			refused(runStart)
			fireAcks(acks, wrapDegraded(durErr))
			run = run[:0]
			return
		}
		// Write-ahead: the run is durably logged before the strategy sees
		// it. If logging fails the run is NOT applied (and neither is
		// anything after it) — replay-on-recovery and the live state must
		// describe the same history. Re-applying a logged-but-unapplied run
		// after a crash is harmless: strategy Insert/Delete absorb
		// duplicates.
		if s.opts.DB != nil {
			// The durability callback fans the record's completion out to
			// every covered mutation call and records an asynchronous
			// failure as the sticky error. Under SyncAlways/SyncNever it
			// runs inline here; under SyncGroup it runs on the DB's syncer
			// after the covering fsync, while this loop is already logging
			// and applying later runs.
			ack := s.asyncDurErr
			if len(acks) > 0 {
				ack = func(err error) {
					s.asyncDurErr(err)
					fireAcks(acks, wrapDegraded(err))
				}
			}
			if err := s.opts.DB.AppendAck(del, run, ack); err != nil {
				durErr = err
				refused(runStart)
				fireAcks(acks, wrapDegraded(err))
				run = run[:0]
				return
			}
		}
		// Strategy errors are impossible here: triples were validated on
		// enqueue and strategy mutation paths only fail on ill-formed input.
		if del {
			s.strat.Delete(run...)
		} else {
			s.strat.Insert(run...)
		}
		if s.opts.DB == nil {
			// No durability layer: "durable" degrades to "applied".
			fireAcks(acks, nil)
		}
		run = run[:0]
		// Checkpoint scheduling rides every run boundary, not just batch
		// ends: under sustained load one drained batch can hold thousands of
		// runs and take seconds to log and apply (especially with per-record
		// fsync), and the strategy state and WAL position agree exactly here
		// — the run was logged, then applied. The O(1) state capture plus
		// the DB's background serialisation keep this loop unstalled; the
		// DB's in-flight guard makes extra Due checks free.
		if s.durable != nil && s.opts.DB.CheckpointDue() {
			if err := s.opts.DB.CheckpointAsync(s.durable.DurableState()); err != nil {
				durErr = err
			}
		}
	}
	cur := batch[0].del
	runStart := 0
	for i, m := range batch {
		if m.del != cur {
			flushRun(cur, runStart)
			cur = m.del
			runStart = i
		}
		run = append(run, m.ts...)
		if m.ack != nil {
			runAcks = append(runAcks, m.ack)
		}
	}
	flushRun(cur, runStart)
	s.mu.Lock()
	if firstRefused >= 0 && s.divergedAt.Load() == 0 {
		// Seq of batch[i] is applied-before-this-batch + i + 1; applied has
		// not advanced yet, and only this goroutine advances it.
		s.divergedAt.Store(s.applied.Load() + uint64(firstRefused) + 1)
	}
	s.applied.Add(uint64(len(batch)))
	if durErr != nil && s.durErr == nil {
		s.durErr = durErr
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if s.om.on {
		s.om.applyLatency.ObserveSince(applyStart)
		s.om.batchSize.Observe(int64(len(batch)))
	}
}

// Len returns the strategy's physical size as of the current snapshot.
func (s *Server) Len() int { return s.reading().Len() }

// Prepare compiles q for repeated concurrent execution against the server.
// The returned ServerPrepared is safe for any number of concurrent callers
// (unlike a bare PreparedQuery): it keeps a pool of per-goroutine prepared
// instances, each of which revalidates against the strategy's current
// snapshot on every execution.
func (s *Server) Prepare(q *Query) (*ServerPrepared, error) {
	// Prepare one instance eagerly so compile-time errors surface here. The
	// epoch is read before the strategy: if a follower re-bootstrap swaps the
	// strategy in between, the entry is tagged stale and dropped on reuse
	// rather than binding a fresh epoch to an old strategy's plan.
	epoch := s.strategyEpoch()
	pq, err := s.reading().Prepare(q)
	if err != nil {
		return nil, err
	}
	sp := &ServerPrepared{s: s, q: q}
	sp.pool.Put(&preparedEntry{pq: pq, epoch: epoch})
	return sp, nil
}

// ServerPrepared is a prepared query bound to a Server, safe for concurrent
// execution. Each execution evaluates against the server's current snapshot;
// see the Server type doc for exactly what that snapshot can contain.
type ServerPrepared struct {
	s    *Server
	q    *Query
	pool sync.Pool // of *preparedEntry (pointers: a value would box per Put)
}

// preparedEntry is one pooled prepared instance, tagged with the strategy
// epoch it was compiled under. A follower's gap re-bootstrap replaces the
// whole serving strategy (not just its data), so entries from an older epoch
// are discarded instead of executing against a retired strategy.
type preparedEntry struct {
	pq    core.PreparedQuery
	epoch uint64
}

// Query returns the source query.
func (p *ServerPrepared) Query() *Query { return p.q }

// get hands out a pooled prepared instance for the current strategy epoch,
// building one if the pool is momentarily empty (first use by a new level of
// concurrency) or holds only retired-epoch entries. hit reports whether the
// pool served the instance (the plan-cache hit/miss signal).
func (p *ServerPrepared) get() (e *preparedEntry, hit bool, err error) {
	epoch := p.s.strategyEpoch()
	if e, ok := p.pool.Get().(*preparedEntry); ok && e.epoch == epoch {
		return e, true, nil
	}
	pq, err := p.s.reading().Prepare(p.q)
	return &preparedEntry{pq: pq, epoch: epoch}, false, err
}

// Answer executes the prepared query against the current snapshot.
//
//webreason:hotpath
func (p *ServerPrepared) Answer() (*engine.Result, error) {
	e, hit, err := p.get()
	if err != nil {
		return nil, err
	}
	if !p.s.om.on {
		res, err := e.pq.Answer()
		if err != nil {
			// Drop the errored instance instead of pooling it: its cached plan
			// state may be mid-revalidation, and recycling it would hand the
			// breakage to the next caller. get builds a fresh one on demand.
			return nil, err
		}
		p.pool.Put(e)
		return res, nil
	}
	t0 := monoNow()
	res, err := e.pq.Answer()
	d := monoNow() - t0
	rows := 0
	if res != nil {
		rows = len(res.Rows)
	}
	//lint:ignore hotpath noteQuery's happy path is counter increments and one Observe; the wall-clock read and query formatting sit in the slow-log branch, entered only after the threshold fires
	p.s.om.noteQuery(p.q, true, hit, d, rows, err)
	if err != nil {
		return nil, err // drop the errored instance (see above)
	}
	p.pool.Put(e)
	return res, nil
}

// Ask reports whether the prepared query has any answer.
//
//webreason:hotpath
func (p *ServerPrepared) Ask() (bool, error) {
	e, hit, err := p.get()
	if err != nil {
		return false, err
	}
	if !p.s.om.on {
		ok, err := e.pq.Ask()
		if err != nil {
			return false, err // drop the errored instance (see Answer)
		}
		p.pool.Put(e)
		return ok, nil
	}
	t0 := monoNow()
	ok, err := e.pq.Ask()
	//lint:ignore hotpath noteQuery's happy path is counter increments and one Observe; the wall-clock read and query formatting sit in the slow-log branch, entered only after the threshold fires
	p.s.om.noteQuery(p.q, true, hit, monoNow()-t0, 0, err)
	if err != nil {
		return false, err // drop the errored instance (see Answer)
	}
	p.pool.Put(e)
	return ok, nil
}
