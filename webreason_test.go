package webreason_test

import (
	"strings"
	"testing"

	webreason "repro"
)

// TestPublicAPITomExample drives the paper's Section I example end to end
// through the façade only — the contract a downstream user relies on.
func TestPublicAPITomExample(t *testing.T) {
	g := webreason.GraphOf(
		webreason.T(webreason.NewIRI("http://ex.org/tom"), webreason.Type, webreason.NewIRI("http://ex.org/Cat")),
		webreason.T(webreason.NewIRI("http://ex.org/Cat"), webreason.SubClassOf, webreason.NewIRI("http://ex.org/Mammal")),
	)
	kb := webreason.NewKB()
	if _, err := kb.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	q, err := webreason.ParseQuery(`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x a ex:Mammal }`)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"saturation", "reformulation", "backward"} {
		s, err := webreason.NewStrategy(name, kb)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		rows := res.Decode(kb.Dict())
		if len(rows) != 1 || rows[0][0] != webreason.NewIRI("http://ex.org/tom") {
			t.Errorf("%s: mammals = %v, want tom", name, rows)
		}
	}
}

// TestPublicAPIPrepare checks the prepared-query contract through the
// façade for all three strategies: repeated executions agree with the
// one-shot Answer, and updates — including ones that grow the dictionary —
// are visible through an already-prepared query.
func TestPublicAPIPrepare(t *testing.T) {
	ex := func(n string) webreason.Term { return webreason.NewIRI("http://ex.org/" + n) }
	g := webreason.GraphOf(
		webreason.T(ex("tom"), webreason.Type, ex("Cat")),
		webreason.T(ex("Cat"), webreason.SubClassOf, ex("Mammal")),
		webreason.T(ex("rex"), webreason.Type, ex("Dog")),
		webreason.T(ex("Dog"), webreason.SubClassOf, ex("Mammal")),
	)
	kb := webreason.NewKB()
	if _, err := kb.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	q := webreason.MustParseQuery(`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x a ex:Mammal }`)
	for _, name := range []string{"saturation", "reformulation", "backward"} {
		s, err := webreason.NewStrategy(name, kb)
		if err != nil {
			t.Fatal(err)
		}
		pq, err := webreason.Prepare(s, q)
		if err != nil {
			t.Fatalf("%s: Prepare: %v", name, err)
		}
		if pq.Query() != q {
			t.Errorf("%s: Query() does not return the source query", name)
		}
		want, err := s.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ {
			got, err := pq.Answer()
			if err != nil {
				t.Fatalf("%s round %d: %v", name, round, err)
			}
			if len(got.Sort().Rows) != len(want.Sort().Rows) {
				t.Fatalf("%s round %d: prepared %d rows, direct %d", name, round, len(got.Rows), len(want.Rows))
			}
		}
		// An update with a brand-new term (dictionary growth) must be
		// visible through the existing prepared query.
		if err := s.Insert(webreason.T(ex("whiskers"+name), webreason.Type, ex("Cat"))); err != nil {
			t.Fatal(err)
		}
		got, err := pq.Answer()
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Rows) != 3 {
			t.Errorf("%s after insert: prepared query sees %d mammals, want 3", name, len(got.Rows))
		}
		ok, err := pq.Ask()
		if err != nil || !ok {
			t.Errorf("%s: Ask = %v, %v", name, ok, err)
		}
	}
}

func TestPublicAPITurtleAndThresholds(t *testing.T) {
	g, err := webreason.ParseTurtle(strings.NewReader(`
@prefix ex: <http://ex.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:A rdfs:subClassOf ex:B .
ex:x a ex:A .
`))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("parsed %d triples", g.Len())
	}
	th := webreason.ComputeThresholds(
		webreason.MaintenanceCosts{Saturation: 100},
		webreason.QueryCosts{EvalSaturated: 1, AnswerReformulated: 11},
	)
	if th.Saturation != 10 {
		t.Errorf("threshold = %v, want 10", th.Saturation)
	}
	rec := webreason.Advise(webreason.CostModel{
		Maintenance:        webreason.MaintenanceCosts{Saturation: 100},
		EvalSaturated:      1,
		AnswerReformulated: 11,
	}, webreason.Workload{Queries: 1000})
	if rec.Best != "saturation" {
		t.Errorf("advise = %s", rec.Best)
	}
}

func TestPublicAPILUBM(t *testing.T) {
	g := webreason.LUBMGenerate(1, 1, 3)
	if g.Len() == 0 {
		t.Fatal("empty LUBM generation")
	}
	ont := webreason.LUBMOntology()
	if len(ont.SchemaTriples()) != ont.Len() {
		t.Error("ontology should be pure schema")
	}
	g.AddAll(ont)
	kb := webreason.NewKB()
	if _, err := kb.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	s := webreason.NewBackwardStrategy(kb)
	q := webreason.MustParseQuery(`PREFIX lubm: <http://lubm.example.org/onto#> ASK { ?x a lubm:Person }`)
	yes, err := s.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if !yes {
		t.Error("no persons in LUBM data")
	}
}
