package webreason_test

import (
	"strings"
	"testing"

	webreason "repro"
)

// TestPublicAPITomExample drives the paper's Section I example end to end
// through the façade only — the contract a downstream user relies on.
func TestPublicAPITomExample(t *testing.T) {
	g := webreason.GraphOf(
		webreason.T(webreason.NewIRI("http://ex.org/tom"), webreason.Type, webreason.NewIRI("http://ex.org/Cat")),
		webreason.T(webreason.NewIRI("http://ex.org/Cat"), webreason.SubClassOf, webreason.NewIRI("http://ex.org/Mammal")),
	)
	kb := webreason.NewKB()
	if _, err := kb.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	q, err := webreason.ParseQuery(`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x a ex:Mammal }`)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"saturation", "reformulation", "backward"} {
		s, err := webreason.NewStrategy(name, kb)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		rows := res.Decode(kb.Dict())
		if len(rows) != 1 || rows[0][0] != webreason.NewIRI("http://ex.org/tom") {
			t.Errorf("%s: mammals = %v, want tom", name, rows)
		}
	}
}

func TestPublicAPITurtleAndThresholds(t *testing.T) {
	g, err := webreason.ParseTurtle(strings.NewReader(`
@prefix ex: <http://ex.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:A rdfs:subClassOf ex:B .
ex:x a ex:A .
`))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("parsed %d triples", g.Len())
	}
	th := webreason.ComputeThresholds(
		webreason.MaintenanceCosts{Saturation: 100},
		webreason.QueryCosts{EvalSaturated: 1, AnswerReformulated: 11},
	)
	if th.Saturation != 10 {
		t.Errorf("threshold = %v, want 10", th.Saturation)
	}
	rec := webreason.Advise(webreason.CostModel{
		Maintenance:        webreason.MaintenanceCosts{Saturation: 100},
		EvalSaturated:      1,
		AnswerReformulated: 11,
	}, webreason.Workload{Queries: 1000})
	if rec.Best != "saturation" {
		t.Errorf("advise = %s", rec.Best)
	}
}

func TestPublicAPILUBM(t *testing.T) {
	g := webreason.LUBMGenerate(1, 1, 3)
	if g.Len() == 0 {
		t.Fatal("empty LUBM generation")
	}
	ont := webreason.LUBMOntology()
	if len(ont.SchemaTriples()) != ont.Len() {
		t.Error("ontology should be pure schema")
	}
	g.AddAll(ont)
	kb := webreason.NewKB()
	if _, err := kb.LoadGraph(g); err != nil {
		t.Fatal(err)
	}
	s := webreason.NewBackwardStrategy(kb)
	q := webreason.MustParseQuery(`PREFIX lubm: <http://lubm.example.org/onto#> ASK { ?x a lubm:Person }`)
	yes, err := s.Ask(q)
	if err != nil {
		t.Fatal(err)
	}
	if !yes {
		t.Error("no persons in LUBM data")
	}
}
