package webreason_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	webreason "repro"
)

// newObsServer builds a small primary with observability enabled: a few
// triples, saturation, a registry and a record-everything slow log.
func newObsServer(t *testing.T) (*webreason.Server, *webreason.MetricsRegistry, *webreason.SlowLog) {
	t.Helper()
	kb := webreason.NewKB()
	if _, err := kb.Add(webreason.T(webreason.NewIRI("ex:Student"), webreason.SubClassOf, webreason.NewIRI("ex:Person"))); err != nil {
		t.Fatal(err)
	}
	reg := webreason.NewMetricsRegistry()
	slow := webreason.NewSlowLog(16, 0) // threshold 0: every read records a trace
	srv := webreason.NewServer(webreason.NewSaturationStrategy(kb), webreason.ServerOptions{
		Obs:     reg,
		SlowLog: slow,
	})
	t.Cleanup(func() { srv.Close() })
	if err := srv.Insert(webreason.T(webreason.NewIRI("ex:alice"), webreason.Type, webreason.NewIRI("ex:Student"))); err != nil {
		t.Fatal(err)
	}
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	return srv, reg, slow
}

func TestAdminEndpoints(t *testing.T) {
	srv, reg, slow := newObsServer(t)
	q := webreason.MustParseQuery(`SELECT ?x WHERE { ?x a <ex:Person> . }`)
	res, err := srv.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("query rows = %d, want 1 (entailed ex:alice a ex:Person)", len(res.Rows))
	}

	ts := httptest.NewServer(webreason.AdminHandler(srv, reg, slow))
	defer ts.Close()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE webreason_query_seconds histogram",
		`webreason_query_seconds_count{strategy="saturation",prepared="false"} 1`,
		"webreason_queue_depth 0",
		"webreason_mutations_applied_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d: %s", code, body)
	}
	var h map[string]any
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if h["role"] != "primary" || h["degraded"] != false {
		t.Fatalf("/healthz role/degraded wrong: %s", body)
	}
	if h["applied"].(float64) != 1 {
		t.Fatalf("/healthz applied = %v, want 1", h["applied"])
	}

	code, body = get("/debug/slowlog")
	if code != http.StatusOK {
		t.Fatalf("/debug/slowlog status %d", code)
	}
	var traces []webreason.QueryTrace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/debug/slowlog not JSON: %v\n%s", err, body)
	}
	if len(traces) == 0 {
		t.Fatal("/debug/slowlog empty despite threshold 0")
	}
	tr := traces[len(traces)-1]
	if tr.Strategy != "saturation" || tr.Rows != 1 || tr.Prepared {
		t.Fatalf("trace fields wrong: %+v", tr)
	}
	if !strings.Contains(tr.Query, "ex:Person") {
		t.Fatalf("trace missing query text: %+v", tr)
	}

	// Retune the threshold live; later fast reads must stop recording.
	if code, _ = get("/debug/slowlog?threshold=1h"); code != http.StatusOK {
		t.Fatalf("threshold retune status %d", code)
	}
	if slow.Threshold() != time.Hour {
		t.Fatalf("threshold = %v, want 1h", slow.Threshold())
	}
	before := slow.Seen()
	if _, err := srv.Query(q); err != nil {
		t.Fatal(err)
	}
	if slow.Seen() != before {
		t.Fatal("fast query recorded despite 1h threshold")
	}

	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if code, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

func TestAdminPreparedAndPoolCounters(t *testing.T) {
	srv, reg, _ := newObsServer(t)
	q := webreason.MustParseQuery(`SELECT ?x WHERE { ?x a <ex:Person> . }`)
	sp, err := srv.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := sp.Answer(); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `webreason_query_seconds_count{strategy="saturation",prepared="true"} 5`) {
		t.Fatalf("prepared latency count missing:\n%s", out)
	}
	// Every execution is either a pool hit or a miss; the split itself is
	// nondeterministic under -race (the race-mode sync.Pool drops Puts).
	if hits, misses := counterValue(t, out, `webreason_prepared_pool_hits_total{strategy="saturation"}`),
		counterValue(t, out, `webreason_prepared_pool_misses_total{strategy="saturation"}`); hits+misses != 5 {
		t.Fatalf("pool hits %d + misses %d != 5 executions:\n%s", hits, misses, out)
	}
	if !strings.Contains(out, "webreason_plan_compiled_total") {
		t.Fatalf("plan lifecycle counters missing:\n%s", out)
	}
}

// counterValue extracts the integer sample of the exactly-named series from
// a Prometheus exposition document.
func counterValue(t *testing.T, exposition, series string) int {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			n, err := strconv.Atoi(rest)
			if err != nil {
				t.Fatalf("series %s sample %q: %v", series, rest, err)
			}
			return n
		}
	}
	t.Fatalf("series %s not found in:\n%s", series, exposition)
	return 0
}
