package webreason_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	webreason "repro"
	"repro/internal/persist"
)

func fleetT(i int) webreason.Triple {
	return webreason.T(
		webreason.NewIRI(fmt.Sprintf("http://fleet.example.org/s%d", i)),
		webreason.NewIRI("http://fleet.example.org/p"),
		webreason.NewIRI(fmt.Sprintf("http://fleet.example.org/o%d", i)))
}

func fleetAsk(i int) *webreason.Query {
	return webreason.MustParseQuery(fmt.Sprintf(
		"ASK { <http://fleet.example.org/s%d> <http://fleet.example.org/p> <http://fleet.example.org/o%d> }", i, i))
}

// newFleetPrimary builds a durable primary server over an empty KB (no
// ontology — followers here bootstrap from the WAL run, which carries data
// mutations only; ontology-bearing snapshot restore is covered by the
// replica and persist packages).
func newFleetPrimary(t *testing.T) (*webreason.Server, *webreason.DB, string) {
	t.Helper()
	dir := t.TempDir()
	db, err := webreason.OpenDB(dir, webreason.DBOptions{
		Sync: webreason.SyncGroup, CheckpointBytes: -1, CheckpointRecords: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	strat, err := webreason.NewStrategy("saturation", webreason.NewKB())
	if err != nil {
		t.Fatal(err)
	}
	return webreason.NewServer(strat, webreason.ServerOptions{FlushEvery: 4, DB: db}), db, dir
}

func newFleetFollower(t *testing.T, primDir string) (*webreason.Server, *webreason.Follower) {
	t.Helper()
	f, err := webreason.StartFollower(webreason.FollowerConfig{
		Dir:    t.TempDir(),
		Source: webreason.NewFSFeeder(primDir),
		Poll:   2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return webreason.NewFollowerServer(f, webreason.ServerOptions{}), f
}

// TestFleetReadYourWrites: a session's durable write on the primary, carried
// to a follower session as a Position, is observed by that session's reads —
// the fleet-wide extension of the read-your-writes contract. Writes on the
// follower itself are refused typed.
func TestFleetReadYourWrites(t *testing.T) {
	srv, db, dir := newFleetPrimary(t)
	defer db.Close()
	defer srv.Close()

	fsrv, _ := newFleetFollower(t, dir)
	defer fsrv.Close()

	sess := srv.Session()
	for i := 1; i <= 3; i++ {
		if err := sess.InsertDurable(fleetT(i)); err != nil {
			t.Fatal(err)
		}
	}
	pos, err := sess.Position()
	if err != nil {
		t.Fatalf("Position: %v", err)
	}
	if pos.IsZero() {
		t.Fatal("durable primary session returned zero Position")
	}

	fsess := fsrv.Session()
	fsess.ObservePosition(pos)
	for i := 1; i <= 3; i++ {
		ok, err := fsess.Ask(fleetAsk(i))
		if err != nil {
			t.Fatalf("follower Ask(%d): %v", i, err)
		}
		if !ok {
			t.Fatalf("follower session missed write %d at observed position %s", i, pos)
		}
	}

	// A later write is covered by a later position, through the same session.
	if err := sess.DeleteDurable(fleetT(2)); err != nil {
		t.Fatal(err)
	}
	pos2, err := sess.Position()
	if err != nil {
		t.Fatal(err)
	}
	if pos2.Compare(pos) <= 0 {
		t.Fatalf("Position did not advance: %s then %s", pos, pos2)
	}
	fsess.ObservePosition(pos2)
	if ok, err := fsess.Ask(fleetAsk(2)); err != nil || ok {
		t.Fatalf("follower Ask(2) after delete = %v, %v; want false, nil", ok, err)
	}

	// Writes belong on the primary: every follower write path refuses typed.
	if err := fsess.Insert(fleetT(9)); !errors.Is(err, webreason.ErrNotPrimary) {
		t.Fatalf("follower session Insert = %v, want ErrNotPrimary", err)
	}
	if err := fsrv.InsertDurable(fleetT(9)); !errors.Is(err, webreason.ErrNotPrimary) {
		t.Fatalf("follower InsertDurable = %v, want ErrNotPrimary", err)
	}
	var npe *webreason.NotPrimaryError
	if err := fsrv.Delete(fleetT(9)); !errors.As(err, &npe) || npe.Role != webreason.RoleFollower {
		t.Fatalf("follower Delete = %v, want NotPrimaryError{RoleFollower}", err)
	}

	h := fsrv.Health()
	if h.Role != webreason.RoleFollower {
		t.Fatalf("follower Health.Role = %s, want follower", h.Role)
	}
	if h.ReplicaApplied.Compare(pos2) < 0 {
		t.Fatalf("follower Health.ReplicaApplied = %s, behind observed %s", h.ReplicaApplied, pos2)
	}
	if h := srv.Health(); h.Role != webreason.RolePrimary || h.Position.IsZero() {
		t.Fatalf("primary Health = role %s position %s", h.Role, h.Position)
	}
}

// TestPromotionMidSession: a follower session keeps reading across its
// server's promotion, the promoted server accepts writes with local
// read-your-writes, and the old primary's directory is fenced.
func TestPromotionMidSession(t *testing.T) {
	srv, db, dir := newFleetPrimary(t)
	fsrv, f := newFleetFollower(t, dir)
	defer fsrv.Close()

	sess := srv.Session()
	if err := sess.InsertDurable(fleetT(1)); err != nil {
		t.Fatal(err)
	}
	pos, err := sess.Position()
	if err != nil {
		t.Fatal(err)
	}

	fsess := fsrv.Session()
	fsess.ObservePosition(pos)
	if ok, err := fsess.Ask(fleetAsk(1)); err != nil || !ok {
		t.Fatalf("pre-promotion read = %v, %v", ok, err)
	}

	// The primary goes away; the follower catches up and takes over.
	waitCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = f.WaitApplied(waitCtx, db.TipPos())
	cancel()
	if err != nil {
		t.Fatalf("WaitApplied before failover: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsrv.Promote(webreason.PromotionOptions{CatchUp: true}); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if got := fsrv.Health().Role; got != webreason.RolePromoted {
		t.Fatalf("promoted Health.Role = %s", got)
	}

	// The same session keeps reading — its waits now resolve locally.
	if ok, err := fsess.Ask(fleetAsk(1)); err != nil || !ok {
		t.Fatalf("post-promotion read = %v, %v", ok, err)
	}
	// And it can write, with local read-your-writes.
	if err := fsess.Insert(fleetT(2)); err != nil {
		t.Fatalf("write on promoted server: %v", err)
	}
	if ok, err := fsess.Ask(fleetAsk(2)); err != nil || !ok {
		t.Fatalf("read-your-write on promoted server = %v, %v", ok, err)
	}
	if err := fsess.InsertDurable(fleetT(3)); err != nil {
		t.Fatalf("durable write on promoted server: %v", err)
	}
	ppos, err := fsess.Position()
	if err != nil {
		t.Fatal(err)
	}
	if ppos.Term != pos.Term+1 {
		t.Fatalf("promoted Position term = %d, want %d", ppos.Term, pos.Term+1)
	}

	// The revived old primary is refused with the typed fencing error.
	if _, err := webreason.OpenDB(dir, webreason.DBOptions{}); !errors.Is(err, webreason.ErrDBFenced) {
		t.Fatalf("revived old primary OpenDB = %v, want ErrDBFenced", err)
	}
}

// TestDegradedFollowerTypedError: a follower cut off by a sibling's
// promotion degrades — a session holding a position it can never apply gets
// a typed error (ErrDegraded wrapping the fencing cause), never silently
// stale data; positionless reads keep serving the last applied state.
func TestDegradedFollowerTypedError(t *testing.T) {
	srv, db, dir := newFleetPrimary(t)
	fsrv1, f1 := newFleetFollower(t, dir)
	defer fsrv1.Close()
	fsrv2, f2 := newFleetFollower(t, dir)
	defer fsrv2.Close()

	sess := srv.Session()
	if err := sess.InsertDurable(fleetT(1)); err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f1.WaitApplied(waitCtx, db.TipPos()); err != nil {
		t.Fatal(err)
	}
	if err := f2.WaitApplied(waitCtx, db.TipPos()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// f1 takes over; its fencing deposes the chain f2 is still tailing.
	if err := fsrv1.Promote(webreason.PromotionOptions{CatchUp: true}); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	s1 := fsrv1.Session()
	if err := s1.InsertDurable(fleetT(2)); err != nil {
		t.Fatal(err)
	}
	pos, err := s1.Position()
	if err != nil {
		t.Fatal(err)
	}

	// A session that must observe the new term's position fails typed.
	s2 := fsrv2.Session()
	s2.ObservePosition(pos)
	_, err = s2.AskContext(waitCtx, fleetAsk(2))
	if !errors.Is(err, webreason.ErrDegraded) {
		t.Fatalf("degraded follower read = %v, want ErrDegraded", err)
	}
	if !errors.Is(err, webreason.ErrDBFenced) {
		t.Fatalf("degraded follower read = %v, want wrapped ErrDBFenced", err)
	}

	// A positionless read still serves the last applied (pre-failover) state.
	if ok, err := fsrv2.Ask(fleetAsk(1)); err != nil || !ok {
		t.Fatalf("positionless read on degraded follower = %v, %v", ok, err)
	}
	h := fsrv2.Health()
	if !h.Degraded || !errors.Is(h.DegradedCause, persist.ErrFenced) {
		t.Fatalf("degraded follower Health = degraded=%v cause=%v", h.Degraded, h.DegradedCause)
	}
}
