// Benchmarks for the snapshot-isolated serving layer (PR "concurrent"),
// recorded by `make bench-concurrent` into BENCH_concurrent.json:
//
//	BenchmarkStoreSnapshot       — Snapshot() acquisition on the saturated
//	    depts=6 LUBM store (quiescent: the O(1) serving-path cost, and
//	    afterWrite: acquisition plus the writer-side copy-on-write detach a
//	    mutation between snapshots forces).
//	BenchmarkStoreCloneDepts6    — the deep Clone of the same store, the
//	    pre-snapshot way to get an isolated view; the acceptance bar is
//	    Snapshot ≥10x cheaper than Clone.
//	BenchmarkServerReadThroughput — steady-state prepared-query throughput
//	    through webreason.Server at 1/4/16 concurrent readers while a writer
//	    goroutine streams insert/delete batches the whole time.
package webreason_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	webreason "repro"
	"repro/internal/core"
	"repro/internal/lubm"
	"repro/internal/reason"
	"repro/internal/store"
)

// depts6Store materialises the depts=6 LUBM closure once per benchmark
// binary — the store every snapshot/clone benchmark runs against.
var (
	depts6Once sync.Once
	depts6Mat  *reason.Materialization
	depts6KB   *core.KB
)

func depts6(b *testing.B) (*core.KB, *reason.Materialization) {
	b.Helper()
	depts6Once.Do(func() {
		cfg := lubm.SmallConfig()
		cfg.DeptsPerUniv = 6
		kb := core.NewKB()
		if _, err := kb.LoadGraph(lubm.GenerateWithOntology(cfg)); err != nil {
			panic(err)
		}
		depts6KB = kb
		depts6Mat = reason.Materialize(kb.Base(), kb.Rules())
	})
	return depts6KB, depts6Mat
}

// BenchmarkStoreSnapshot measures Snapshot acquisition on the depts=6 G∞
// store. quiescent is the cost the serving path pays per batch when nothing
// changed (cached snapshot); afterWrite interleaves one mutation per
// snapshot, so every iteration pays the copy-on-write detach — the honest
// worst case of one-triple batches.
func BenchmarkStoreSnapshot(b *testing.B) {
	kb, mat := depts6(b)
	st := mat.Store()
	probe := kb.Encode(lubm.InstanceUpdates(1)[0])
	b.Run("quiescent", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if st.Snapshot() == nil {
				b.Fatal("nil snapshot")
			}
		}
	})
	b.Run("afterWrite", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				st.Add(probe)
			} else {
				st.Remove(probe)
			}
			if st.Snapshot() == nil {
				b.Fatal("nil snapshot")
			}
		}
		b.StopTimer()
		st.Remove(probe) // restore
	})
}

// BenchmarkStoreCloneDepts6 is the deep-copy baseline Snapshot replaces.
func BenchmarkStoreCloneDepts6(b *testing.B) {
	_, mat := depts6(b)
	st := mat.Store()
	b.ReportAllocs()
	var sink *store.Store
	for i := 0; i < b.N; i++ {
		sink = st.Clone()
	}
	_ = sink
}

// BenchmarkServerReadThroughput measures per-query latency of a prepared
// LUBM query through the Server under sustained writes, at 1, 4 and 16
// concurrent readers. The writer goroutine streams 16-triple insert batches
// (deleting earlier ones to keep the store near its initial size) for the
// whole measurement, so every read crosses a freshly swapped snapshot.
func BenchmarkServerReadThroughput(b *testing.B) {
	for _, readers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			cfg := lubm.SmallConfig()
			cfg.DeptsPerUniv = 6
			kb := core.NewKB()
			if _, err := kb.LoadGraph(lubm.GenerateWithOntology(cfg)); err != nil {
				b.Fatal(err)
			}
			srv := webreason.NewServer(core.NewSaturation(kb), webreason.ServerOptions{
				FlushEvery:    64,
				FlushInterval: 500 * time.Microsecond,
			})
			defer srv.Close()
			var q *webreason.Query
			for _, wq := range lubm.Queries() {
				if wq.Name == "Q5" {
					q = wq.Parse()
				}
			}
			pq, err := srv.Prepare(q)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := pq.Answer(); err != nil {
				b.Fatal(err)
			}

			stop := make(chan struct{})
			var writerWG sync.WaitGroup
			writerWG.Add(1)
			go func() {
				defer writerWG.Done()
				ex := func(n string) webreason.Term { return webreason.NewIRI("http://load.example.org/" + n) }
				p := ex("p")
				gen := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					batch := make([]webreason.Triple, 0, 16)
					for i := 0; i < 16; i++ {
						batch = append(batch, webreason.T(ex(fmt.Sprintf("s%d-%d", gen, i)), p, ex(fmt.Sprintf("o%d-%d", gen, i))))
					}
					if err := srv.Insert(batch...); err != nil {
						return
					}
					if err := srv.Delete(batch...); err != nil {
						return
					}
					gen++
				}
			}()

			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/readers + 1
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if _, err := pq.Answer(); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			close(stop)
			writerWG.Wait()
		})
	}
}
