package webreason_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	webreason "repro"
	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/engine"
	"repro/internal/lubm"
	"repro/internal/persist"
	"repro/internal/sparql"
)

// answersOf evaluates q against the strategy and returns the decoded,
// canonically sorted answer set. Rows are decoded to term syntax so results
// from different processes (whose dictionaries may assign different IDs)
// compare meaningfully.
func answersOf(t *testing.T, strat webreason.Strategy, d *dict.Dict, q *sparql.Query) []string {
	t.Helper()
	res, err := strat.Answer(q)
	if err != nil {
		t.Fatalf("Answer(%s): %v", q, err)
	}
	return decodeRows(t, res, d)
}

func decodeRows(t *testing.T, res *engine.Result, d *dict.Dict) []string {
	t.Helper()
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		s := ""
		for _, id := range row {
			term, ok := d.Term(id)
			if !ok {
				t.Fatalf("row references unknown ID %d", id)
			}
			s += term.String() + "\t"
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// copyDataDir snapshots the on-disk bytes of a persistence directory without
// closing anything — the state a kill -9 would leave behind. The live
// server's background checkpointer may garbage-collect files mid-copy; a
// vanished file means GC completed (which only happens after the covering
// snapshot is durable), so the copy restarts and converges on a consistent
// post-GC view.
func copyDataDir(t *testing.T, src string) string {
	t.Helper()
	for attempt := 0; attempt < 50; attempt++ {
		dst := t.TempDir()
		entries, err := os.ReadDir(src)
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for _, e := range entries {
			b, err := os.ReadFile(filepath.Join(src, e.Name()))
			if os.IsNotExist(err) {
				ok = false // GC raced the copy; retry from a fresh listing
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if ok {
			return dst
		}
	}
	t.Fatal("copyDataDir: checkpoint GC kept racing the copy")
	return ""
}

// mutationStream produces a deterministic mixed insert/delete workload:
// churn over a bounded pool (so deletes hit and DRed runs) plus a stream of
// fresh terms (so the dictionary grows past checkpoint boundaries and WAL
// replay must re-coin terms).
func mutationStream(seed int64, n int) []struct {
	del bool
	ts  []webreason.Triple
} {
	rng := rand.New(rand.NewSource(seed))
	pool := func(i int) webreason.Term {
		return webreason.NewIRI(fmt.Sprintf("http://mut.example.org/e%d", i))
	}
	p := webreason.NewIRI("http://mut.example.org/rel")
	var out []struct {
		del bool
		ts  []webreason.Triple
	}
	for i := 0; i < n; i++ {
		var ts []webreason.Triple
		sz := 1 + rng.Intn(4)
		for j := 0; j < sz; j++ {
			if rng.Intn(5) == 0 {
				ts = append(ts, webreason.T(
					webreason.NewIRI(fmt.Sprintf("http://mut.example.org/fresh-%d-%d", i, j)),
					p, pool(rng.Intn(30))))
			} else {
				ts = append(ts, webreason.T(pool(rng.Intn(30)), p, pool(rng.Intn(30))))
			}
		}
		out = append(out, struct {
			del bool
			ts  []webreason.Triple
		}{del: rng.Intn(3) == 0, ts: ts})
	}
	return out
}

// runDurableServer builds a saturation strategy over the small LUBM KB,
// serves it durably from dir, applies the mutation stream, flushes, and
// returns the server and its KB (caller closes).
func runDurableServer(t *testing.T, dir string, seed int64, muts int) (*webreason.Server, *core.KB, *webreason.DB) {
	return runDurableServerSync(t, dir, seed, muts, persist.SyncAlways)
}

// runDurableServerSync is runDurableServer under a chosen WAL sync policy.
// Under SyncGroup every eighth mutation goes through a read-your-writes
// session's durable (acked) path, so the crash tests also cover records that
// were staged and acknowledged by a group fsync.
func runDurableServerSync(t *testing.T, dir string, seed int64, muts int, sync persist.SyncPolicy) (*webreason.Server, *core.KB, *webreason.DB) {
	t.Helper()
	kb := core.NewKB()
	if _, err := kb.LoadGraph(lubm.GenerateWithOntology(lubm.SmallConfig())); err != nil {
		t.Fatal(err)
	}
	strat := core.NewSaturation(kb)
	db, err := persist.Open(dir, persist.Options{CheckpointRecords: 7, CheckpointBytes: -1, Sync: sync, GroupDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(strat.DurableState()); err != nil {
		t.Fatal(err)
	}
	srv := webreason.NewServer(strat, webreason.ServerOptions{FlushEvery: 4, DB: db})
	sess := srv.Session()
	for i, m := range mutationStream(seed, muts) {
		durable := sync == persist.SyncGroup && i%8 == 0
		var err error
		switch {
		case durable && m.del:
			err = sess.DeleteDurable(m.ts...)
		case durable:
			err = sess.InsertDurable(m.ts...)
		case m.del:
			err = srv.Delete(m.ts...)
		default:
			err = srv.Insert(m.ts...)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	return srv, kb, db
}

// restoreFrom recovers a strategy from a data directory, replaying the WAL
// tail through the normal Insert/Delete path.
func restoreFrom(t *testing.T, dir, strategy string) (webreason.Strategy, *core.KB, *webreason.DB) {
	t.Helper()
	db, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	st := db.State()
	if st == nil {
		t.Fatal("recovery found no snapshot")
	}
	kb, strat, err := core.RestoreStrategy(strategy, st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.ReplayTail(strat.Insert, strat.Delete); err != nil {
		t.Fatal(err)
	}
	return strat, kb, db
}

// TestServerCrashRecoveryAnswersIdentically is the acceptance check: a
// killed-and-restarted durable server answers every LUBM workload query
// identically to the uninterrupted instance — including mid-checkpoint kill
// points, which the on-disk copy captures whenever the background
// checkpointer happens to be between rotation and snapshot rename. It runs
// under all three sync policies; the kill point for SyncGroup routinely
// lands between stage and group fsync (the copy races the background
// syncer), and the acked session mutations in the stream pin that an
// acknowledged run is never lost.
func TestServerCrashRecoveryAnswersIdentically(t *testing.T) {
	for _, pol := range []struct {
		name string
		sync persist.SyncPolicy
	}{
		{"always", persist.SyncAlways},
		{"group", persist.SyncGroup},
		{"never", persist.SyncNever},
	} {
		t.Run(pol.name, func(t *testing.T) {
			dir := t.TempDir()
			srv, kb, db := runDurableServerSync(t, dir, 42, 160, pol.sync)

			// "kill -9": capture the on-disk state with nothing flushed or
			// closed.
			killed := copyDataDir(t, dir)

			queries := lubm.Queries()
			want := make(map[string][]string, len(queries))
			for _, wq := range queries {
				want[wq.Name] = answersOf(t, srv.Strategy(), kb.Dict(), wq.Parse())
			}
			srv.Close()
			db.Close()

			strat, kb2, db2 := restoreFrom(t, killed, "saturation")
			defer db2.Close()
			for _, wq := range queries {
				got := answersOf(t, strat, kb2.Dict(), wq.Parse())
				if len(got) != len(want[wq.Name]) {
					t.Fatalf("%s: %d answers after recovery, want %d", wq.Name, len(got), len(want[wq.Name]))
				}
				for i := range got {
					if got[i] != want[wq.Name][i] {
						t.Fatalf("%s: answer %d = %q, want %q", wq.Name, i, got[i], want[wq.Name][i])
					}
				}
			}
		})
	}
}

// TestCrashReplayEqualsCleanShutdown runs the same workload into two durable
// servers; one shuts down cleanly (final checkpoint), the other is killed.
// Recovering both must yield identical physical stores — the property that
// WAL replay through the normal mutation path reconstructs exactly the
// state a clean shutdown persists.
func TestCrashReplayEqualsCleanShutdown(t *testing.T) {
	for _, seed := range []int64{7, 99} {
		cleanDir, crashDir := t.TempDir(), t.TempDir()

		srvA, _, dbA := runDurableServer(t, cleanDir, seed, 120)
		if err := srvA.Close(); err != nil { // clean: flush + final checkpoint
			t.Fatal(err)
		}
		dbA.Close()

		srvB, _, dbB := runDurableServer(t, crashDir, seed, 120)
		killed := copyDataDir(t, crashDir)
		srvB.Close()
		dbB.Close()

		stratClean, kbClean, dbClean := restoreFrom(t, cleanDir, "saturation")
		stratCrash, kbCrash, dbCrash := restoreFrom(t, killed, "saturation")

		// Compare the full materialised state term-by-term via a match-all
		// query answered by both.
		q := webreason.MustParseQuery(`SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
		a := answersOf(t, stratClean, kbClean.Dict(), q)
		b := answersOf(t, stratCrash, kbCrash.Dict(), q)
		if len(a) != len(b) {
			t.Fatalf("seed %d: clean has %d triples, crash-replay %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: triple %d differs:\nclean: %s\ncrash: %s", seed, i, a[i], b[i])
			}
		}
		dbClean.Close()
		dbCrash.Close()
	}
}

// TestCrossStrategyRestore pins the conversion paths: a saturation snapshot
// (set base + G∞) restored as reformulation, and a reformulation snapshot
// (full-store base) restored as saturation, both answer like a fresh build.
func TestCrossStrategyRestore(t *testing.T) {
	kb := core.NewKB()
	if _, err := kb.LoadGraph(lubm.GenerateWithOntology(lubm.SmallConfig())); err != nil {
		t.Fatal(err)
	}
	queries := lubm.Queries()

	for _, src := range []string{"saturation", "reformulation"} {
		for _, dst := range []string{"saturation", "reformulation", "backward"} {
			dir := t.TempDir()
			srcStrat, err := core.NewStrategy(src, kb)
			if err != nil {
				t.Fatal(err)
			}
			db, err := persist.Open(dir, persist.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := db.Checkpoint(srcStrat.(core.DurableStrategy).DurableState()); err != nil {
				t.Fatal(err)
			}
			db.Close()

			restored, kb2, db2 := restoreFrom(t, dir, dst)
			for _, wq := range queries {
				want := answersOf(t, srcStrat, kb.Dict(), wq.Parse())
				got := answersOf(t, restored, kb2.Dict(), wq.Parse())
				if len(got) != len(want) {
					t.Fatalf("%s→%s %s: %d answers, want %d", src, dst, wq.Name, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s→%s %s: answer %d = %q, want %q", src, dst, wq.Name, i, got[i], want[i])
					}
				}
			}
			db2.Close()
		}
	}
}

// TestRestoredServerKeepsServing pins that a recovered state is not a
// read-only artifact: the restored strategy serves further durable mutations
// and a second recovery sees them.
func TestRestoredServerKeepsServing(t *testing.T) {
	dir := t.TempDir()
	srv, _, db := runDurableServer(t, dir, 5, 40)
	srv.Close()
	db.Close()

	strat, _, db2 := restoreFrom(t, dir, "saturation")
	srv2 := webreason.NewServer(strat, webreason.ServerOptions{FlushEvery: 4, DB: db2})
	marker := webreason.T(
		webreason.NewIRI("http://mut.example.org/post-recovery"),
		webreason.NewIRI("http://mut.example.org/rel"),
		webreason.NewIRI("http://mut.example.org/e1"))
	if err := srv2.Insert(marker); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	db2.Close()

	strat3, kb3, db3 := restoreFrom(t, dir, "saturation")
	defer db3.Close()
	q := webreason.MustParseQuery(`ASK { <http://mut.example.org/post-recovery> <http://mut.example.org/rel> <http://mut.example.org/e1> }`)
	ok, err := strat3.Ask(q)
	if err != nil || !ok {
		t.Fatalf("marker lost across second recovery: ok=%v err=%v (kb len %d)", ok, err, kb3.Len())
	}
}
