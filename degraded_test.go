package webreason_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	webreason "repro"
	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/persist"
)

// degTriple is a distinct well-formed triple per index.
func degTriple(i int) webreason.Triple {
	return webreason.T(
		webreason.NewIRI("http://deg.example.org/s"+string(rune('a'+i%26))+itoa(i)),
		webreason.NewIRI("http://deg.example.org/rel"),
		webreason.NewIRI("http://deg.example.org/o"))
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for ; i > 0; i /= 10 {
		b = append([]byte{byte('0' + i%10)}, b...)
	}
	return string(b)
}

// newFaultedServer opens a durable server over an empty saturation strategy
// whose persistence layer runs through fsys with the given DB options.
func newFaultedServer(t *testing.T, dir string, fsys persist.FS, opts persist.Options, srvOpts webreason.ServerOptions) (*webreason.Server, *webreason.DB) {
	t.Helper()
	opts.FS = fsys
	db, err := persist.Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	strat := core.NewSaturation(core.NewKB())
	srvOpts.DB = db
	srv := webreason.NewServer(strat, srvOpts)
	return srv, db
}

// TestDegradedModeOnSyncFailure drives a durable server into degraded
// read-only mode with a persistently failing WAL fsync and pins the
// contract: the failing write and everything after it get typed
// DegradedErrors, reads keep serving the last applied snapshot, and Health
// reports the mode with its cause.
func TestDegradedModeOnSyncFailure(t *testing.T) {
	// WAL sync #1 is the header during Open; everything after fails — a disk
	// that went bad right after boot.
	fsys := faultfs.New(faultfs.NewSchedule().FailOpAlways(faultfs.OpSync, "wal-", 2, syscall.EIO))
	srv, db := newFaultedServer(t, t.TempDir(), fsys,
		persist.Options{Sync: persist.SyncAlways, CheckpointBytes: -1, CheckpointRecords: -1},
		webreason.ServerOptions{FlushEvery: 2})
	defer db.Close()
	defer srv.Close()

	// A healthy write first, so the served snapshot has content to keep
	// serving after degradation. It must be applied before the fault-tripping
	// write joins the same batch, hence the Flush.
	//
	// Under SyncAlways AppendAck syncs inline, so even this first write trips
	// the fault — which is exactly the scenario: nothing after the failure is
	// applied.
	err := srv.InsertDurable(degTriple(0))
	if err == nil {
		t.Fatal("durable insert over a failing WAL fsync should error")
	}
	if !errors.Is(err, webreason.ErrDegraded) {
		t.Fatalf("durable insert error should match ErrDegraded, got %v", err)
	}
	if !errors.Is(err, faultfs.ErrInjected) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("degraded error should carry the injected cause, got %v", err)
	}

	// Writes now fail fast with the typed error — even plain async inserts.
	if err := srv.Insert(degTriple(1)); !errors.Is(err, webreason.ErrDegraded) {
		t.Fatalf("post-degradation Insert should fail fast with ErrDegraded, got %v", err)
	}
	var de *webreason.DegradedError
	if err := srv.Delete(degTriple(1)); !errors.As(err, &de) || de.Cause == nil {
		t.Fatalf("post-degradation Delete should be a DegradedError with a cause, got %v", err)
	}

	// Reads keep serving (the last applied snapshot; here the empty state,
	// since the very first write was refused).
	q := webreason.MustParseQuery(`ASK { <http://deg.example.org/sa0> <http://deg.example.org/rel> <http://deg.example.org/o> }`)
	ok, qerr := srv.Ask(q)
	if qerr != nil {
		t.Fatalf("read on a degraded server should serve, got %v", qerr)
	}
	if ok {
		t.Fatal("refused write must not be visible")
	}

	h := srv.Health()
	if !h.Degraded || h.DegradedCause == nil {
		t.Fatalf("Health should report degraded with a cause, got %+v", h)
	}
	if !errors.Is(h.DegradedCause, faultfs.ErrInjected) {
		t.Fatalf("Health cause should be the injected fault, got %v", h.DegradedCause)
	}

	// Close surfaces the sticky failure, typed.
	if err := srv.Close(); !errors.Is(err, webreason.ErrDegraded) {
		t.Fatalf("Close on a degraded server should return ErrDegraded, got %v", err)
	}
}

// TestSessionReadAfterDurabilityError is the promptness contract: once a
// session's own accepted write has been refused by the degraded server, the
// session's reads return a typed error quickly — they never block forever
// waiting for an application that will never happen — while sessions
// untouched by the divergence keep reading.
func TestSessionReadAfterDurabilityError(t *testing.T) {
	fsys := faultfs.New(faultfs.NewSchedule().FailOpAlways(faultfs.OpSync, "wal-", 2, syscall.EIO))
	srv, db := newFaultedServer(t, t.TempDir(), fsys,
		persist.Options{Sync: persist.SyncAlways, CheckpointBytes: -1, CheckpointRecords: -1},
		webreason.ServerOptions{FlushEvery: 1})
	defer db.Close()
	defer srv.Close()

	sess := srv.Session()
	if err := sess.InsertDurable(degTriple(0)); !errors.Is(err, webreason.ErrDegraded) {
		t.Fatalf("session durable insert should degrade, got %v", err)
	}

	// The read must come back promptly with the typed error, not hang on the
	// never-to-be-applied watermark. Run it with a failsafe timeout so a
	// regression is a clean failure, not a suite hang.
	q := webreason.MustParseQuery(`ASK { ?s ?p ?o }`)
	type res struct {
		err  error
		took time.Duration
	}
	ch := make(chan res, 1)
	go func() {
		start := time.Now()
		_, err := sess.Ask(q)
		ch <- res{err, time.Since(start)}
	}()
	select {
	case r := <-ch:
		if !errors.Is(r.err, webreason.ErrDegraded) {
			t.Fatalf("session read after refused write should return ErrDegraded, got %v", r.err)
		}
		if r.took > 2*time.Second {
			t.Fatalf("session read took %v; want prompt typed failure", r.took)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("session read blocked instead of returning a typed error")
	}

	// A session with no refused write still reads normally.
	if _, err := srv.Session().Ask(q); err != nil {
		t.Fatalf("fresh session read on a degraded server should serve, got %v", err)
	}
}

// TestOverloadedAdmission pins deadline-aware admission control: when the
// mutation queue sits at MaxPending past the caller's deadline, the write is
// bounced with a typed OverloadedError instead of blocking indefinitely.
func TestOverloadedAdmission(t *testing.T) {
	// A slow disk keeps the writer busy for ~1s per WAL sync, so the queue
	// stays full while the short-deadline write waits for admission.
	fsys := faultfs.New(faultfs.NewSchedule().LatencyOn(faultfs.OpSync, "wal-", 300*time.Millisecond))
	srv, db := newFaultedServer(t, t.TempDir(), fsys,
		persist.Options{Sync: persist.SyncAlways, CheckpointBytes: -1, CheckpointRecords: -1},
		webreason.ServerOptions{FlushEvery: 1, MaxPending: 1})
	defer db.Close()
	defer srv.Close()

	// First write: writer picks it up and stalls in the slow fsync (the sleep
	// gives it time to grab the batch, so the second write really sits in the
	// queue at MaxPending rather than joining the first batch).
	if err := srv.Insert(degTriple(0)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := srv.Insert(degTriple(1)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := srv.InsertContext(ctx, degTriple(2))
	if !errors.Is(err, webreason.ErrOverloaded) {
		t.Fatalf("admission past deadline should be ErrOverloaded, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("overloaded error should carry the context cause, got %v", err)
	}
	var oe *webreason.OverloadedError
	if !errors.As(err, &oe) || oe.Pending < 1 {
		t.Fatalf("OverloadedError should report the observed depth, got %v", err)
	}
	if !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("unexpected message %q", err.Error())
	}

	// Without a deadline the same write admits once the writer catches up.
	if err := srv.Insert(degTriple(2)); err != nil {
		t.Fatalf("unbounded write should eventually admit, got %v", err)
	}
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableContextAbandonsWaitNotWrite pins the documented cancellation
// semantics: expiring the context during the durability wait returns the
// context error, while the write itself stays accepted and becomes visible.
func TestDurableContextAbandonsWaitNotWrite(t *testing.T) {
	fsys := faultfs.New(faultfs.NewSchedule().LatencyOn(faultfs.OpSync, "wal-", 200*time.Millisecond))
	srv, db := newFaultedServer(t, t.TempDir(), fsys,
		persist.Options{Sync: persist.SyncAlways, CheckpointBytes: -1, CheckpointRecords: -1},
		webreason.ServerOptions{FlushEvery: 1})
	defer db.Close()
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := srv.InsertDurableContext(ctx, degTriple(0))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled durability wait should return the context error, got %v", err)
	}

	// The write was not undone: once the writer drains, it is visible.
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	q := webreason.MustParseQuery(`ASK { ?s ?p ?o }`)
	if ok, err := srv.Ask(q); err != nil || !ok {
		t.Fatalf("abandoned-wait write should still be applied (ok=%v err=%v)", ok, err)
	}
}

// TestHealthHealthy sanity-checks the report on a healthy durable server:
// counters advance, no degradation, lag drains to zero after Flush.
func TestHealthHealthy(t *testing.T) {
	srv, db := newFaultedServer(t, t.TempDir(), persist.OS,
		persist.Options{Sync: persist.SyncNever, CheckpointBytes: -1, CheckpointRecords: -1},
		webreason.ServerOptions{FlushEvery: 4})
	defer db.Close()
	defer srv.Close()

	for i := 0; i < 10; i++ {
		if err := srv.Insert(degTriple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	h := srv.Health()
	if h.Degraded || h.DegradedCause != nil || h.Closed {
		t.Fatalf("healthy server misreported: %+v", h)
	}
	if h.Enqueued != 10 || h.Applied != 10 || h.Lag != 0 || h.Pending != 0 {
		t.Fatalf("counters after flush: %+v", h)
	}
	if h.WALGeneration == 0 || h.WALBytes == 0 || h.WALChainBytes < h.WALBytes {
		t.Fatalf("WAL fields should be populated: %+v", h)
	}
	if h.CheckpointFailures != 0 || h.CheckpointRetryPending {
		t.Fatalf("no checkpoint trouble expected: %+v", h)
	}
}

// TestCheckpointRetryBackoff pins that a failed background checkpoint does
// NOT degrade the server; it retries on a capped backoff — driven by the
// writer's idle retry timer, no new mutations needed — and eventually
// completes, clearing the pending state and garbage-collecting the chain.
func TestCheckpointRetryBackoff(t *testing.T) {
	// The first two snapshot-file fsyncs fail; the third attempt succeeds.
	fsys := faultfs.New(faultfs.NewSchedule().
		FailOpOn(faultfs.OpSync, ".snap.tmp", 1, syscall.EIO).
		FailOpOn(faultfs.OpSync, ".snap.tmp", 2, syscall.EIO))
	srv, db := newFaultedServer(t, t.TempDir(), fsys,
		persist.Options{
			Sync: persist.SyncNever, CheckpointRecords: 2, CheckpointBytes: -1,
			CheckpointBackoff: time.Millisecond, CheckpointBackoffMax: 5 * time.Millisecond,
		},
		webreason.ServerOptions{FlushEvery: 1})
	defer db.Close()
	defer srv.Close()

	for i := 0; i < 4; i++ {
		if err := srv.InsertDurable(degTriple(i)); err != nil {
			t.Fatalf("checkpoint failures must not degrade writes: %v", err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		h := srv.Health()
		if h.CheckpointFailures >= 2 && !h.CheckpointRetryPending && !h.LastCheckpoint.IsZero() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("checkpoint retry never completed: %+v", h)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if h := srv.Health(); h.Degraded {
		t.Fatalf("checkpoint failures alone must not degrade the server: %+v", h)
	}
	// The server still accepts writes throughout.
	if err := srv.InsertDurable(degTriple(99)); err != nil {
		t.Fatalf("write after recovered checkpoint: %v", err)
	}
}

// TestWALBoundDegrades pins the disk-protection backstop: when checkpoints
// cannot shrink the chain and the WAL grows past MaxWALBytes, the server
// degrades with an error matching both ErrDegraded and ErrWALBound instead
// of writing toward a full disk.
func TestWALBoundDegrades(t *testing.T) {
	srv, db := newFaultedServer(t, t.TempDir(), persist.OS,
		persist.Options{
			Sync: persist.SyncNever, CheckpointBytes: -1, CheckpointRecords: -1,
			MaxWALBytes: 4096,
		},
		webreason.ServerOptions{FlushEvery: 1})
	defer db.Close()
	defer srv.Close()

	var err error
	for i := 0; i < 10_000; i++ {
		if err = srv.InsertDurable(degTriple(i)); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("writes never hit the 4KB WAL bound")
	}
	if !errors.Is(err, webreason.ErrDegraded) || !errors.Is(err, webreason.ErrWALBound) {
		t.Fatalf("bound hit should match ErrDegraded and ErrWALBound, got %v", err)
	}
	h := srv.Health()
	if !h.Degraded {
		t.Fatalf("Health should report degraded: %+v", h)
	}
	if h.WALChainBytes > 4096+512 {
		t.Fatalf("chain grew past the bound: %d bytes", h.WALChainBytes)
	}
	// Reads still serve.
	if _, err := srv.Ask(webreason.MustParseQuery(`ASK { ?s ?p ?o }`)); err != nil {
		t.Fatalf("degraded read: %v", err)
	}
}

// TestGCRemoveFailuresCountedAndRetried pins the GC contract: failed
// removals of superseded generation files are counted (not silently
// ignored), the files survive, and the next checkpoint's GC pass re-attempts
// and clears them once the disk heals.
func TestGCRemoveFailuresCountedAndRetried(t *testing.T) {
	fsys := faultfs.New(faultfs.NewSchedule().FailOpAlways(faultfs.OpRemove, "", 1, syscall.EIO))
	dir := t.TempDir()
	db, err := persist.Open(dir, persist.Options{Sync: persist.SyncNever, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	strat := core.NewSaturation(core.NewKB())

	appendAndCheckpoint := func() {
		t.Helper()
		if err := db.Append(false, []webreason.Triple{degTriple(int(db.Generation()))}); err != nil {
			t.Fatal(err)
		}
		if err := db.Checkpoint(strat.DurableState()); err != nil {
			t.Fatalf("checkpoint (GC failures must not fail it): %v", err)
		}
	}

	appendAndCheckpoint() // rotates; GC of the old generation fails
	st := db.Stats()
	if st.GCRemoveFailures == 0 {
		t.Fatalf("failed removals should be counted, got %+v", st)
	}
	firstFails := st.GCRemoveFailures

	// Disk "healed": the next pass re-attempts the leftovers and wins.
	fsys.Clear()
	appendAndCheckpoint()
	st = db.Stats()
	if st.GCRemoveFailures != firstFails {
		t.Fatalf("healed GC should add no failures: %d -> %d", firstFails, st.GCRemoveFailures)
	}
	// Only the live generation's files (plus LOCK) remain.
	entries, err := persist.OS.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	gen := db.Generation()
	for _, e := range entries {
		name := e.Name()
		if name == "LOCK" {
			continue
		}
		if !strings.Contains(name, genHex(gen)) {
			t.Fatalf("stale file %s survived the healed GC pass (gen %d)", name, gen)
		}
	}
}

func genHex(gen uint64) string {
	const digits = "0123456789abcdef"
	b := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		b[i] = digits[gen&0xf]
		gen >>= 4
	}
	return string(b)
}

// TestServerConcurrentDegradation hammers a degrading server from many
// goroutines: every outcome must be nil or a typed error, and the server
// must neither hang nor panic. (The chaos harness broadens this; this test
// pins the specific enqueue/degrade race.)
func TestServerConcurrentDegradation(t *testing.T) {
	fsys := faultfs.New(faultfs.NewSchedule().FailOpAlways(faultfs.OpSync, "wal-", 4, syscall.EIO))
	srv, db := newFaultedServer(t, t.TempDir(), fsys,
		persist.Options{Sync: persist.SyncAlways, CheckpointBytes: -1, CheckpointRecords: -1},
		webreason.ServerOptions{FlushEvery: 2, MaxPending: 8})
	defer db.Close()
	defer srv.Close()

	q := webreason.MustParseQuery(`ASK { ?s ?p ?o }`)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := srv.Session()
			for i := 0; i < 40; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
				var err error
				if i%2 == 0 {
					err = sess.InsertDurableContext(ctx, degTriple(g*1000+i))
				} else {
					err = sess.DeleteContext(ctx, degTriple(g*1000+i-1))
				}
				cancel()
				if err != nil && !typedServerError(err) {
					t.Errorf("untyped write error: %v", err)
					return
				}
				if _, err := sess.AskContext(context.Background(), q); err != nil && !typedServerError(err) {
					t.Errorf("untyped read error: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// typedServerError reports whether err is one of the server's documented
// failure modes — the only errors a client should ever see.
func typedServerError(err error) bool {
	return errors.Is(err, webreason.ErrDegraded) ||
		errors.Is(err, webreason.ErrOverloaded) ||
		errors.Is(err, webreason.ErrServerClosed) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}
